//! Behavioural tests of detector internals that only show through the
//! statistics counters: contention accounting, coalescing volume, the
//! two-tier check hit distribution, and report-buffer behaviour.

use gpu_sim::prelude::*;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;

fn run_with(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    words: usize,
    cfg: IguardConfig,
) -> Instrumented<Iguard> {
    let gcfg = GpuConfig {
        seed: 7,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(gcfg);
    let buf = gpu.alloc(words).unwrap();
    let mut tool = Instrumented::new(Iguard::new(cfg));
    gpu.launch(kernel, grid, block, &[buf], &mut tool).unwrap();
    tool
}

/// Every thread of every warp loads the same word repeatedly.
fn hot_word_kernel(rounds: u32) -> Kernel {
    let mut b = KernelBuilder::new("hot_word");
    let base = b.param(0);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, rounds);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let _ = b.ld(base, 0);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    b.build()
}

/// Every thread loads its own private word repeatedly.
fn private_word_kernel(rounds: u32) -> Kernel {
    let mut b = KernelBuilder::new("private_word");
    let base = b.param(0);
    let g = b.special(Special::GlobalTid);
    let off = b.mul(g, 4u32);
    let a = b.add(base, off);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, rounds);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let _ = b.ld(a, 0);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    b.build()
}

#[test]
fn coalescing_collapses_warp_uniform_loads() {
    let k = hot_word_kernel(8);
    let with = run_with(&k, 2, 64, 4, IguardConfig::default());
    let s = with.tool().stats();
    assert!(s.coalesced_saved > 0, "uniform loads must coalesce");
    // Each n-lane split processes one representative for n-1 saved; most
    // splits are full warps (ITS occasionally subdivides them).
    assert!(
        s.coalesced_saved > 20 * s.accesses,
        "most of the 32 lanes must be saved per split ({} saved / {} processed)",
        s.coalesced_saved,
        s.accesses
    );

    let without = run_with(
        &k,
        2,
        64,
        4,
        IguardConfig {
            coalescing: false,
            ..IguardConfig::default()
        },
    );
    let s2 = without.tool().stats();
    assert_eq!(s2.coalesced_saved, 0);
    assert!(
        s2.accesses > s.accesses * 20,
        "uncoalesced must process ~32x the accesses"
    );
}

#[test]
fn cross_warp_hot_words_are_contended_private_words_are_not() {
    let hot = run_with(&hot_word_kernel(8), 4, 64, 4, IguardConfig::default());
    assert!(
        hot.tool().stats().contended_accesses > 0,
        "a grid-shared hot word must register contention"
    );

    let private = run_with(&private_word_kernel(8), 4, 64, 256, IguardConfig::default());
    assert_eq!(
        private.tool().stats().contended_accesses,
        0,
        "thread-private words must never be contended"
    );
}

#[test]
fn backoff_reduces_contention_cycles_without_changing_detection() {
    let k = hot_word_kernel(16);
    let with = run_with(&k, 4, 64, 4, IguardConfig::default());
    let without = run_with(
        &k,
        4,
        64,
        4,
        IguardConfig {
            backoff: false,
            ..IguardConfig::default()
        },
    );
    assert!(
        without.tool().stats().contention_cycles > 2 * with.tool().stats().contention_cycles,
        "backoff must shrink serialized cycles ({} vs {})",
        without.tool().stats().contention_cycles,
        with.tool().stats().contention_cycles
    );
    assert_eq!(with.tool().unique_races(), 0);
    assert_eq!(without.tool().unique_races(), 0);
}

#[test]
fn safe_hit_distribution_reflects_program_structure() {
    // Private repeated loads: first access (P1) then program order (P3) or
    // no-write (P2) forever; never barriers or atomics.
    let t = run_with(&private_word_kernel(4), 1, 64, 128, IguardConfig::default());
    let s = t.tool().stats();
    assert!(s.safe_hits[0] > 0, "P1 first-access hits");
    assert!(s.safe_hits[1] > 0, "P2 no-write hits (read-only words)");
    assert_eq!(s.safe_hits[4], 0, "no barriers in this kernel");
    assert_eq!(s.safe_hits[5], 0, "no atomics in this kernel");
    assert_eq!(s.race_hits.iter().sum::<u64>(), 0);
}

#[test]
fn dynamic_races_accumulate_while_reports_deduplicate() {
    // A hot racy word re-raced every round: many dynamic occurrences, one
    // shipped report (per pc/kind).
    let mut b = KernelBuilder::new("repeat_racy");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, 8u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    b.st(base, 0, tid); // every thread, every round: massively racy
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    let k = b.build();
    let mut t = run_with(&k, 2, 64, 4, IguardConfig::default());
    let dynamic = t.tool().dynamic_races();
    let unique = t.tool().unique_races();
    assert!(dynamic > 10, "re-raced across rounds: {dynamic}");
    assert!(unique <= 4, "one site, few kinds: {unique}");
    assert!(dynamic > unique as u64 * 5, "dedup must collapse repeats");
    assert_eq!(t.tool_mut().races().len(), unique);
}

#[test]
fn scord_mode_detects_scoped_races_but_not_its_races() {
    // Scoped race: caught by both (the shared logic).
    let mut b = KernelBuilder::new("scoped_probe");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let one = b.imm(1);
    let _ = b.atom(AtomOp::Add, Scope::Block, base, 0, one);
    b.bind(fin);
    let scoped = b.build();
    let t = run_with(&scoped, 4, 32, 4, IguardConfig::scord_like());
    assert!(
        t.tool().unique_races() > 0,
        "ScoRD catches scoped-atomic races"
    );

    // ITS race: invisible to the lockstep assumption.
    let mut b = KernelBuilder::new("its_probe2");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let is1 = b.eq(tid, 1u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is1, skip);
    let v = b.imm(7);
    b.st(base, 1, v);
    b.bind(skip);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    let its = b.build();
    let t = run_with(&its, 1, 32, 4, IguardConfig::scord_like());
    assert_eq!(
        t.tool().unique_races(),
        0,
        "ScoRD mode must miss the ITS race"
    );
    let t = run_with(&its, 1, 32, 4, IguardConfig::default());
    assert!(t.tool().unique_races() > 0, "full iGUARD catches it");
}

#[test]
fn multi_launch_sequences_resize_state_and_stay_clean() {
    // Launch grids of very different shapes back to back on one detector:
    // sync metadata and lock tables are resized per launch, metadata
    // epochs isolate the kernels, and nothing false-positives.
    fn fill_kernel() -> Kernel {
        let mut b = KernelBuilder::new("shape_shifter");
        let g = b.special(Special::GlobalTid);
        let base = b.param(0);
        let off = b.mul(g, 4u32);
        let a = b.add(base, off);
        b.st(a, 0, g);
        b.syncthreads();
        let v = b.ld(a, 0);
        let v1 = b.add(v, 1u32);
        b.st(a, 0, v1);
        b.build()
    }
    let k = fill_kernel();
    let mut gpu = Gpu::new(GpuConfig {
        seed: 9,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(2048).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    for (grid, block) in [(1u32, 32u32), (16, 128), (2, 40), (8, 64), (1, 1024)] {
        gpu.launch(&k, grid, block, &[buf], &mut tool)
            .unwrap_or_else(|e| panic!("{grid}x{block}: {e}"));
    }
    assert_eq!(tool.tool().unique_races(), 0);
    assert_eq!(tool.tool().stats().launches, 5);
}

#[test]
fn racy_then_clean_launches_do_not_leak_reports() {
    // A racy kernel followed by a clean one: the clean launch must add no
    // new sites (epoch isolation), and the racy sites persist for the
    // final drain.
    let mut racy = KernelBuilder::new("racy_k");
    let base = racy.param(0);
    let tid = racy.special(Special::Tid);
    racy.st(base, 0, tid); // all threads, one word
    let racy = racy.build();

    let mut clean = KernelBuilder::new("clean_k");
    let base = clean.param(0);
    let g = clean.special(Special::GlobalTid);
    let off = clean.mul(g, 4u32);
    let a = clean.add(base, off);
    clean.st(a, 0, g);
    let clean = clean.build();

    let mut gpu = Gpu::new(GpuConfig {
        seed: 9,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(256).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(&racy, 1, 64, &[buf], &mut tool).unwrap();
    let after_racy = tool.tool().unique_races();
    assert!(after_racy > 0);
    gpu.launch(&clean, 2, 64, &[buf], &mut tool).unwrap();
    assert_eq!(
        tool.tool().unique_races(),
        after_racy,
        "clean launch adds nothing"
    );
    let races = tool.tool_mut().races();
    assert!(races.iter().all(|r| &*r.kernel == "racy_k"));
}
