//! Property tests of metadata-table degradation accounting under random
//! fault schedules: every load that loses its previous-accessor
//! information — to genuine capacity pressure, an injected eviction, or
//! an injected tag alias — is exactly what the detector mirrors into its
//! missed-check counter, and every fired metadata fault lands in exactly
//! one [`MetaStats`] counter.

use faults::{FaultConfig, FaultSite, RATE_ONE};
use iguard::bitfield::{AccessorInfo, Flags, MetadataEntry};
use iguard::metadata::{MetadataTable, TableConfig};
use proptest::prelude::*;

fn live_entry(warp: u32) -> MetadataEntry {
    MetadataEntry {
        tag: 0,
        flags: Flags {
            valid: true,
            ..Flags::default()
        },
        accessor: AccessorInfo {
            warp_id: warp,
            ..AccessorInfo::default()
        },
        writer: AccessorInfo::default(),
        locks: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any fault schedule, capacity cap, and access pattern: the
    /// number of evicted loads (what `Iguard::process_access` counts as
    /// missed checks) equals `MetaStats::total_evictions()`, and the
    /// injected counters equal the fault plane's own fire counts — no
    /// degradation is silent, none is double-counted.
    #[test]
    fn every_injected_eviction_is_an_accounted_missed_check(
        seed in any::<u64>(),
        evict_rate in 0u32..=RATE_ONE,
        alias_rate in 0u32..=RATE_ONE,
        cap_pow in 3u32..7,
        words in prop::collection::vec(0u32..256, 0..400),
    ) {
        let mut t = MetadataTable::new(TableConfig {
            capacity_words: Some(1usize << cap_pow),
            faults: FaultConfig::disabled()
                .with_seed(seed)
                .with_rate(FaultSite::MetaEviction, evict_rate)
                .with_rate(FaultSite::MetaTagAlias, alias_rate),
            ..TableConfig::covering(256)
        }).unwrap();

        // Mirror the detector: count each evicted load, store a live
        // entry back (so slot contention produces capacity evictions).
        let mut missed_checks = 0u64;
        for w in words {
            let load = t.load(w);
            missed_checks += u64::from(load.evicted);
            t.store(w, live_entry(w));
        }

        let ms = t.meta_stats();
        prop_assert_eq!(missed_checks, ms.total_evictions());
        let fired = t.fault_stats();
        prop_assert_eq!(fired.get(FaultSite::MetaEviction), ms.injected_evictions);
        prop_assert_eq!(fired.get(FaultSite::MetaTagAlias), ms.injected_aliases);
    }

    /// A zero-rate plane never evicts and never fires, whatever its seed:
    /// a full-capacity table under the compiled-in-but-disabled plane
    /// behaves exactly like one with no plane at all.
    #[test]
    fn zero_rate_plane_never_evicts(
        seed in any::<u64>(),
        words in prop::collection::vec(0u32..64, 0..200),
    ) {
        let mut plain = MetadataTable::new(TableConfig::covering(64)).unwrap();
        let mut planed = MetadataTable::new(TableConfig {
            faults: FaultConfig::disabled().with_seed(seed),
            ..TableConfig::covering(64)
        }).unwrap();
        for w in words {
            let a = plain.load(w);
            let b = planed.load(w);
            prop_assert_eq!(a.entry.pack(), b.entry.pack());
            prop_assert!(!b.evicted);
            plain.store(w, live_entry(w));
            planed.store(w, live_entry(w));
        }
        prop_assert_eq!(planed.meta_stats().total_evictions(), 0);
        prop_assert_eq!(planed.fault_stats().total(), 0);
    }
}
