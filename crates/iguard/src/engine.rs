//! The shared per-word detection engine: the "back half" of the pipeline.
//!
//! [`crate::detector::Iguard`] splits each instrumented access into a
//! *front half* that must run inside the instrumentation callback (lock
//! inference, coalescing, synchronization snapshots — everything that
//! reads live launch state) and a *back half* that only needs the flat
//! metadata/contention/history tables keyed by word index. This module is
//! that back half, extracted so the serial detector and the sharded
//! detector ([`crate::shard::ShardedIguard`]) execute the **identical**
//! check pipeline: the serial path drives it with an inline [`Sink`] that
//! charges the clock and reports races immediately, while shard workers
//! drive it with a deferred sink that accumulates deltas and seq-tagged
//! race candidates for a deterministic merge.
//!
//! Everything observable (counter increments, check outcomes, write-back
//! contents, history pushes) is decided here, once, for both paths.

use std::time::Instant;

use crate::bitfield::{AccessorInfo, MetadataEntry};
use crate::checks::{detailed, preliminary, AccessType, CurrAccess, MdView, RaceKind, Safe};
use crate::metadata::MetadataTable;
use crate::syncmeta::SyncMetadata;

/// Capacity of the inline history ring; the §6.7 ablation tops out at
/// depth 8, and [`HistoryTable`] clamps deeper configurations to it.
pub(crate) const HISTORY_RING: usize = 8;

/// Maps a preliminary-check outcome to its `safe_hits` slot.
#[must_use]
pub(crate) fn safe_index(safe: Safe) -> usize {
    match safe {
        Safe::FirstAccess => 0,
        Safe::NoWrite => 1,
        Safe::ProgramOrder => 2,
        Safe::WarpSynced => 3,
        Safe::Barrier => 4,
        Safe::SafeAtomic => 5,
    }
}

/// Maps a race kind to its `race_hits` slot.
#[must_use]
pub(crate) fn race_index(kind: RaceKind) -> usize {
    match kind {
        RaceKind::AtomicScope => 0,
        RaceKind::IntraWarp => 1,
        RaceKind::IntraBlock => 2,
        RaceKind::InterBlock => 3,
        RaceKind::Locking => 4,
    }
}

/// Flat, epoch-invalidated per-word contention state.
///
/// Indexed by metadata word exactly like `MetadataTable` (power-of-two
/// capacity ≥ the backing words, so every in-bounds word index maps
/// injectively to its own slot): a slot whose epoch is stale reads as the
/// zeroed default the old `HashMap::entry(word).or_default()` produced,
/// so the replacement is behaviour-identical while removing hashing and
/// allocation from the per-access path. Backing vectors are zero-filled
/// allocations, so untouched slots never cost physical pages.
#[derive(Debug, Default)]
struct ContentionTable {
    mask: usize,
    epoch: u32,
    slot_epoch: Vec<u32>,
    last_step: Vec<u64>,
    last_warp: Vec<u32>,
    streak: Vec<u32>,
}

impl ContentionTable {
    /// Sets the slot mask for `words` and invalidates every slot (the old
    /// per-launch `HashMap::clear`), without touching the backing pages.
    /// Storage itself grows lazily (see [`ContentionTable::ensure`]).
    fn begin_launch(&mut self, words: usize) {
        let cap = words.next_power_of_two();
        self.mask = cap - 1;
        if self.epoch == 0 {
            self.epoch = 1;
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The 32-bit epoch wrapped: stale slots could masquerade as
            // live, so pay one real clear every 2^32 launches.
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Grows the slot arrays to cover `slot`. The mapping is identity
    /// for in-range words, so growing to the touched high-water mark is
    /// equivalent to full preallocation — without zeroing tens of
    /// megabytes per detector for the device's whole address space.
    /// Fresh slots get epoch 0, which never equals the live epoch.
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.slot_epoch.len() {
            let n = (slot + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.last_step.resize(n, 0);
            self.last_warp.resize(n, 0);
            self.streak.resize(n, 0);
        }
    }

    /// Applies the streak update for one access and returns the updated
    /// streak (the state machine of the contention charge, unchanged).
    fn update(&mut self, word: u32, warp: u32, step: u64, window: u64) -> u32 {
        let slot = word as usize & self.mask;
        self.ensure(slot);
        let (last_step, last_warp, mut streak) = if self.slot_epoch[slot] == self.epoch {
            (self.last_step[slot], self.last_warp[slot], self.streak[slot])
        } else {
            (0, 0, 0)
        };
        let close = step.saturating_sub(last_step) <= window;
        if close && last_warp != warp {
            streak = streak.saturating_add(1);
        } else if !close {
            streak = 1;
        }
        self.slot_epoch[slot] = self.epoch;
        self.last_step[slot] = step;
        self.last_warp[slot] = warp;
        self.streak[slot] = streak;
        streak
    }
}

/// Flat fixed-capacity history rings (§6.7 ablation depths > 1), indexed
/// like [`ContentionTable`] and invalidated the same way. Replaces the
/// old `HashMap<u32, VecDeque<HistRecord>>`: per-word rings of at most
/// [`HISTORY_RING`] records live inline in flat arrays, so pushing a
/// record allocates nothing. Records store the accessor identity
/// losslessly (unlike the packed 16-byte entry, whose fields truncate).
#[derive(Debug, Default)]
struct HistoryTable {
    /// Records kept per word: `min(cfg.history_depth, HISTORY_RING)`.
    /// `<= 1` disables the table (the entry itself is depth-1 history).
    depth: usize,
    mask: usize,
    epoch: u32,
    slot_epoch: Vec<u32>,
    /// Per-slot ring control: `head << 4 | len` (both fit: depth ≤ 8).
    ctl: Vec<u8>,
    /// Per-record identity: `warp_id << 32 | lane`.
    id: Vec<u64>,
    /// Per-record sync counters, one byte each:
    /// `dev_fence | blk_fence << 8 | blk_bar << 16 | warp_bar << 24`.
    sync: Vec<u32>,
    /// Per-record lock Bloom summary.
    locks: Vec<u16>,
}

impl HistoryTable {
    fn begin_launch(&mut self, words: usize, configured_depth: usize) {
        self.depth = configured_depth.min(HISTORY_RING);
        if self.depth <= 1 {
            return;
        }
        let cap = words.next_power_of_two();
        self.mask = cap - 1;
        if self.epoch == 0 {
            self.epoch = 1;
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Grows the slot and record arrays to cover `slot` — same lazy
    /// high-water scheme as [`ContentionTable::ensure`] (the record
    /// arrays are `HISTORY_RING` entries per slot, so eager sizing
    /// would be hundreds of megabytes at device scale).
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.slot_epoch.len() {
            let n = (slot + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.ctl.resize(n, 0);
            self.id.resize(n * HISTORY_RING, 0);
            self.sync.resize(n * HISTORY_RING, 0);
            self.locks.resize(n * HISTORY_RING, 0);
        }
    }

    /// Appends a record, evicting the oldest once the ring is full (the
    /// old `push_back` + trim-to-depth).
    fn push(&mut self, word: u32, info: AccessorInfo, locks: u16) {
        let slot = word as usize & self.mask;
        self.ensure(slot);
        let (mut head, mut len) = if self.slot_epoch[slot] == self.epoch {
            let c = self.ctl[slot];
            ((c >> 4) as usize, (c & 0xF) as usize)
        } else {
            (0, 0)
        };
        let pos = if len == self.depth {
            let oldest = head;
            head = (head + 1) % self.depth;
            oldest
        } else {
            let p = (head + len) % self.depth;
            len += 1;
            p
        };
        let at = slot * HISTORY_RING + pos;
        self.id[at] = (u64::from(info.warp_id) << 32) | u64::from(info.lane);
        self.sync[at] = u32::from(info.dev_fence)
            | (u32::from(info.blk_fence) << 8)
            | (u32::from(info.blk_bar) << 16)
            | (u32::from(info.warp_bar) << 24);
        self.locks[at] = locks;
        self.slot_epoch[slot] = self.epoch;
        self.ctl[slot] = ((head as u8) << 4) | len as u8;
    }

    /// Yields `word`'s records newest-first, skipping the newest (which
    /// duplicates the entry's own accessor) — the `iter().rev().skip(1)`
    /// order of the old `VecDeque`.
    fn rev_skip_newest(&self, word: u32) -> impl Iterator<Item = (AccessorInfo, u16)> + '_ {
        let slot = word as usize & self.mask;
        let (head, len) = if self.depth > 1 && self.slot_epoch.get(slot) == Some(&self.epoch) {
            let c = self.ctl[slot];
            ((c >> 4) as usize, (c & 0xF) as usize)
        } else {
            (0, 0)
        };
        (0..len.saturating_sub(1)).rev().map(move |i| {
            let at = slot * HISTORY_RING + (head + i) % self.depth;
            let id = self.id[at];
            let sync = self.sync[at];
            let info = AccessorInfo {
                warp_id: (id >> 32) as u32,
                lane: id as u32,
                dev_fence: sync as u8,
                blk_fence: (sync >> 8) as u8,
                blk_bar: (sync >> 16) as u8,
                warp_bar: (sync >> 24) as u8,
            };
            (info, self.locks[at])
        })
    }
}

/// Configuration knobs the engine reads per access, frozen at launch.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineParams {
    /// §6.5 optimization 2: contenders back off instead of hammering.
    pub backoff: bool,
    /// Serial cycles per unit of contention under backoff.
    pub contention_base: u64,
    /// ScoRD emulation when false: same-warp accesses treated converged.
    pub its_support: bool,
    /// Accessor-history depth (§6.7 ablation); 1 disables the table.
    pub history_depth: usize,
}

/// One routed access, fully resolved by the front half: everything the
/// back half needs that depends on *live* launch state (synchronization
/// snapshot, lock summary) is captured here at access time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccessCtx {
    /// Word index the engine's tables are keyed by. For shards this is
    /// the *sub-word* (original word with the shard bits stripped).
    pub word: u32,
    pub warp: u32,
    pub lane: u32,
    pub block: u32,
    pub wpb: u32,
    pub step: u64,
    pub active_mask: u32,
    pub kind: AccessType,
    /// Synchronization snapshot taken at access time (front half).
    pub snap: AccessorInfo,
    /// Lock Bloom summary of the accessing lane at access time.
    pub lock_summary: u16,
}

/// Where the engine's observations land. The serial detector implements
/// this with immediate clock charges and reporter sends; shard workers
/// accumulate deltas. Callback order within one access is fixed by
/// [`Engine::process`] and identical for both.
pub(crate) trait Sink {
    /// Whether to wall-clock the metadata load (phase profiling).
    fn profiling(&self) -> bool;
    /// Wall nanoseconds spent in the metadata load (only if profiling).
    fn uvm_ns(&mut self, ns: u64);
    /// UVM fault cycles charged by the metadata load (> 0 only).
    fn uvm_cycles(&mut self, cycles: u64);
    /// The entry's previous accessor was lost before this check.
    fn missed_check(&mut self);
    /// The entry was found contended; `cycles` of serialization accrue.
    fn contended(&mut self, cycles: u64);
    /// A preliminary condition proved the access safe.
    fn safe_hit(&mut self, idx: usize);
    /// A race verdict. `curr` is the fully-built current access (after
    /// the ScoRD mask twiddle), `md_info` the previous accessor raced
    /// against.
    fn race(&mut self, kind: RaceKind, curr: &CurrAccess, md_info: AccessorInfo);
}

/// The flat per-word detection state: metadata + contention + history
/// tables plus the check pipeline over them (§6.2, §6.4).
///
/// One engine serves the whole address space in the serial detector;
/// [`crate::shard::ShardedIguard`] owns one per hashed-address shard.
#[derive(Debug, Default)]
pub(crate) struct Engine {
    /// Packed 16-byte-entry metadata table; `None` until the owner
    /// allocates it at first launch (allocation cost accounting differs
    /// between serial and sharded, so it stays owner-side).
    pub table: Option<MetadataTable>,
    contention: ContentionTable,
    history: HistoryTable,
    params: EngineParams,
    window: u64,
    total_warps: u32,
}

impl Engine {
    /// Per-launch reset: epoch-invalidates the contention and history
    /// tables and freezes this launch's parameters.
    pub fn begin_launch(
        &mut self,
        words: usize,
        total_warps: u32,
        window: u64,
        params: EngineParams,
    ) {
        self.total_warps = total_warps;
        self.window = window;
        self.params = params;
        self.contention.begin_launch(words);
        self.history.begin_launch(words, params.history_depth);
    }

    /// The per-access detection pipeline (§6.2, §6.4): metadata load
    /// (UVM + eviction accounting), contention streak, shared-flag
    /// update, two-tier P/R checks, history, metadata write-back.
    ///
    /// The caller guarantees `self.table` is `Some` (orphan events are
    /// counted front-side before routing).
    pub fn process(&mut self, ctx: &AccessCtx, sync: &SyncMetadata, sink: &mut impl Sink) {
        let word = ctx.word;

        // Metadata lookup: UVM touch + contention serialization.
        let t0 = sink.profiling().then(Instant::now);
        let loaded = self.table.as_mut().expect("caller guards table").load(word);
        if let Some(t) = t0 {
            sink.uvm_ns(t.elapsed().as_nanos() as u64);
        }
        if loaded.uvm_cycles > 0 {
            sink.uvm_cycles(loaded.uvm_cycles);
        }
        if loaded.evicted {
            // The entry's previous accessor was forgotten (capacity
            // pressure or injected fault): the check below degenerates to
            // a first access, so a race could slip by — count it.
            sink.missed_check();
        }
        let streak = self.contention.update(word, ctx.warp, ctx.step, self.window);
        if streak > 1 {
            let cycles = if self.params.backoff {
                // Dynamically-adjusted exponential backoff: contenders
                // spread out and hand the lock off cleanly, so each pays
                // roughly one critical section of serialization.
                self.params.contention_base
            } else {
                // Unmitigated CAS hammering: every retry burns memory
                // bandwidth and delays the holder, so the per-access waste
                // grows with the number of concurrent contenders.
                2 * u64::from(streak.min(96))
            };
            sink.contended(cycles);
        }

        let mut entry = loaded.entry;
        let snap = ctx.snap;
        let lock_summary = ctx.lock_summary;

        if !entry.flags.valid {
            // P1: first access.
            sink.safe_hit(0);
            entry.flags.valid = true;
            entry.accessor = snap;
            if ctx.kind.is_write() {
                entry.writer = snap;
                entry.locks = lock_summary;
                entry.flags.modified = true;
                if let AccessType::Atomic { scope_block } = ctx.kind {
                    entry.flags.atomic = true;
                    entry.flags.scope_block = scope_block;
                }
            }
            self.push_history(word, snap, lock_summary);
            self.table
                .as_mut()
                .expect("caller guards table")
                .store(word, entry);
            return;
        }

        // Shared-flag update precedes the checks (§6.2).
        let last_block = entry.accessor.block_id(ctx.wpb);
        if last_block != ctx.block {
            entry.flags.dev_shared = true;
        } else if entry.accessor.warp_id != ctx.warp {
            entry.flags.blk_shared = true;
        }

        let md_info = if ctx.kind.is_write() {
            entry.accessor
        } else {
            entry.writer
        };
        let md = self.md_view(md_info, sync);
        let mut curr = CurrAccess {
            kind: ctx.kind,
            warp_id: ctx.warp,
            lane: ctx.lane,
            block_id: ctx.block,
            active_mask: ctx.active_mask,
            snap,
            locks: lock_summary,
        };
        if !self.params.its_support && md_info.warp_id == ctx.warp {
            // ScoRD mode: the detector predates ITS and assumes lockstep
            // warps -- same-warp accesses are always treated as converged,
            // which is exactly why ScoRD misses ITS races (Sec 4).
            curr.active_mask |= 1 << md_info.lane;
        }

        match preliminary(&entry, &md, &curr, ctx.wpb) {
            Some(safe) => sink.safe_hit(safe_index(safe)),
            None => {
                let mut verdict = detailed(&entry, &md, &curr, ctx.wpb);
                // §6.7 ablation: with deeper history, also check against
                // older accessors that the 16-byte entry has forgotten.
                if verdict.is_none() && self.params.history_depth > 1 {
                    verdict = self.check_history(word, &entry, &curr, ctx.wpb, sync);
                }
                if let Some(kind_found) = verdict {
                    sink.race(kind_found, &curr, md_info);
                }
            }
        }

        // Metadata write-back: identity + synchronization of the accessor,
        // and of the writer for writes (§6.2).
        entry.accessor = snap;
        if ctx.kind.is_write() {
            entry.writer = snap;
            entry.locks = lock_summary;
            entry.flags.modified = true;
            if let AccessType::Atomic { scope_block } = ctx.kind {
                entry.flags.atomic = true;
                entry.flags.scope_block = scope_block;
            } else {
                // A plain store supersedes the atomic history of the
                // location: P6 must not treat a plain last-write as a safe
                // atomic (engineering choice documented in DESIGN.md).
                entry.flags.atomic = false;
                entry.flags.scope_block = false;
            }
        }
        self.push_history(word, snap, lock_summary);
        self.table
            .as_mut()
            .expect("caller guards table")
            .store(word, entry);
    }

    /// Resolves a stored accessor into a check view: fence counters are
    /// read *live* from the synchronization metadata when the identity is
    /// within the current grid, otherwise from the stored snapshot. (This
    /// is the only live-sync read on the check path — barrier counters
    /// are only consumed via access-time snapshots — which is what makes
    /// fence-broadcast shard replicas sufficient for determinism.)
    fn md_view(&self, info: AccessorInfo, sync: &SyncMetadata) -> MdView {
        // Identity is only meaningful within the current launch epoch; a
        // wrapped WarpID outside the grid falls back to stored counters.
        if info.warp_id < self.total_warps {
            MdView {
                info,
                live_dev_fence: sync.dev_fence(info.warp_id, info.lane),
                live_blk_fence: sync.blk_fence(info.warp_id, info.lane),
            }
        } else {
            MdView {
                info,
                live_dev_fence: info.dev_fence,
                live_blk_fence: info.blk_fence,
            }
        }
    }

    fn push_history(&mut self, word: u32, info: AccessorInfo, locks: u16) {
        if self.history.depth <= 1 {
            return;
        }
        self.history.push(word, info, locks);
    }

    fn check_history(
        &self,
        word: u32,
        entry: &MetadataEntry,
        curr: &CurrAccess,
        wpb: u32,
        sync: &SyncMetadata,
    ) -> Option<RaceKind> {
        for (info, locks) in self.history.rev_skip_newest(word) {
            let md = self.md_view(info, sync);
            let mut shadow = *entry;
            shadow.locks = locks;
            if preliminary(&shadow, &md, curr, wpb).is_none() {
                if let Some(kind) = detailed(&shadow, &md, curr, wpb) {
                    return Some(kind);
                }
            }
        }
        None
    }
}
