//! Typed construction errors for the detector's public API.

use std::fmt;

use nvbit_sim::channel::ChannelError;
use uvm_sim::UvmError;

/// A structurally invalid detector configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IguardError {
    /// The metadata table must cover at least one word.
    EmptyTable,
    /// The managed metadata region could not be created.
    Uvm(UvmError),
    /// The race-report channel could not be created.
    Report(ChannelError),
}

impl fmt::Display for IguardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IguardError::EmptyTable => write!(f, "metadata table cannot be empty"),
            IguardError::Uvm(e) => write!(f, "metadata region: {e}"),
            IguardError::Report(e) => write!(f, "race-report channel: {e}"),
        }
    }
}

impl std::error::Error for IguardError {}

impl From<UvmError> for IguardError {
    fn from(e: UvmError) -> Self {
        IguardError::Uvm(e)
    }
}

impl From<ChannelError> for IguardError {
    fn from(e: ChannelError) -> Self {
        IguardError::Report(e)
    }
}
