//! Lock inference and the lock tables of §6.3 / Figure 7.
//!
//! CUDA has no lock instruction; the guidebook idiom is
//! `atomicCAS(lock,0,1)` + `__threadfence()` to acquire and
//! `__threadfence()` + `atomicExch(lock,0)` to release. iGUARD infers these
//! sequences at runtime:
//!
//! - **atomicCAS** inserts a Valid (not yet Active) entry with an 18-bit
//!   hash of the lock address and the CAS's scope;
//! - a **fence** *activates* every Valid entry of matching-or-narrower
//!   scope — an Active entry is a held lock;
//! - **atomicExch** invalidates the matching entry (even without the
//!   release fence — a missing fence is caught separately by the fence
//!   counters, §6.3).
//!
//! Each warp owns one table (3 entries + the `isThread` escalation bit);
//! each thread owns a shadow table. If more than one lane of a warp ever
//! executes `atomicCAS` in the same split, the kernel is inferred to use
//! **per-thread locking** and the warp permanently switches to the
//! per-thread tables (`isThread` is never unset, §6.3).

use gpu_sim::ir::{Scope, WARP_SIZE};

/// Entries per lock table ("up to 3 separate locks held ... at any given
/// time. We found that this is sufficient for practical purposes", §6.3).
pub const LOCK_TABLE_ENTRIES: usize = 3;

/// 18-bit hash of a lock variable's address, as stored in the table.
#[must_use]
pub fn lock_hash(addr: u32) -> u32 {
    // Multiply-shift hash folded to 18 bits; any fixed mixing works, it
    // just needs to be deterministic and well spread.
    (addr.wrapping_mul(0x9E37_79B9) >> 14) & 0x3_FFFF
}

/// 16-bit, 2-hash Bloom set for one lock (the `Locks` summary of Fig. 4).
#[must_use]
pub fn bloom_bits(hash18: u32) -> u16 {
    let b1 = hash18 & 0xF;
    let b2 = (hash18 >> 9) & 0xF;
    (1u16 << b1) | (1u16 << b2)
}

/// One lock-table entry (Figure 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockEntry {
    /// CAS observed for this lock.
    pub valid: bool,
    /// Acquire fence observed after the CAS: the lock is held.
    pub active: bool,
    /// Scope of the CAS: true = block scope.
    pub scope_block: bool,
    /// 18-bit address hash.
    pub hash: u32,
}

/// A 3-entry lock table (per warp or per thread).
#[derive(Debug, Clone, Copy, Default)]
pub struct LockTable {
    entries: [LockEntry; LOCK_TABLE_ENTRIES],
    /// Round-robin victim cursor when the table is full.
    cursor: u8,
}

impl LockTable {
    /// Records an `atomicCAS` on `addr` with `scope`: insert or refresh a
    /// Valid, inactive entry.
    pub fn on_cas(&mut self, addr: u32, scope: Scope) {
        let hash = lock_hash(addr);
        let scope_block = scope == Scope::Block;
        // Refresh an existing entry for this lock.
        for e in &mut self.entries {
            if e.valid && e.hash == hash && e.scope_block == scope_block {
                return;
            }
        }
        // Insert into a free slot, else evict round-robin.
        let slot = self
            .entries
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                let s = self.cursor as usize % LOCK_TABLE_ENTRIES;
                self.cursor = self.cursor.wrapping_add(1);
                s
            });
        self.entries[slot] = LockEntry {
            valid: true,
            active: false,
            scope_block,
            hash,
        };
    }

    /// Records a fence of `scope`: activates Valid entries with matching or
    /// narrower scope (§6.3). A device fence activates device- and
    /// block-scope locks; a block fence activates block-scope locks only.
    pub fn on_fence(&mut self, scope: Scope) {
        for e in &mut self.entries {
            if e.valid {
                let activates = match scope {
                    Scope::Device => true,
                    Scope::Block => e.scope_block,
                };
                if activates {
                    e.active = true;
                }
            }
        }
    }

    /// Records an `atomicExch` on `addr`: invalidates the matching entry
    /// (unlock), regardless of Active state.
    pub fn on_exch(&mut self, addr: u32, scope: Scope) {
        let hash = lock_hash(addr);
        let scope_block = scope == Scope::Block;
        for e in &mut self.entries {
            if e.valid && e.hash == hash && e.scope_block == scope_block {
                *e = LockEntry::default();
            }
        }
    }

    /// The 16-bit Bloom summary of currently *held* (Active) locks — what
    /// gets copied into the memory metadata on a write.
    #[must_use]
    pub fn summary(&self) -> u16 {
        self.entries
            .iter()
            .filter(|e| e.valid && e.active)
            .fold(0u16, |acc, e| acc | bloom_bits(e.hash))
    }

    /// Number of currently held locks.
    #[must_use]
    pub fn held(&self) -> usize {
        self.entries.iter().filter(|e| e.valid && e.active).count()
    }

    /// Raw entries, for diagnostics and tests.
    #[must_use]
    pub fn entries(&self) -> &[LockEntry; LOCK_TABLE_ENTRIES] {
        &self.entries
    }
}

/// All lock state for one warp: the warp table, the per-lane shadow tables,
/// and the `isThread` escalation bit.
#[derive(Debug, Clone)]
pub struct WarpLockState {
    warp_table: LockTable,
    thread_tables: Vec<LockTable>,
    is_thread: bool,
}

impl Default for WarpLockState {
    fn default() -> Self {
        WarpLockState {
            warp_table: LockTable::default(),
            thread_tables: vec![LockTable::default(); WARP_SIZE],
            is_thread: false,
        }
    }
}

impl WarpLockState {
    /// Whether per-thread locking has been inferred for this warp.
    #[must_use]
    pub fn is_thread(&self) -> bool {
        self.is_thread
    }

    /// Handles an `atomicCAS` split: `lanes_addrs` is one `(lane, addr)`
    /// per active lane. More than one active lane CASing at once ⇒ infer
    /// per-thread locking and set `isThread` permanently (§6.3).
    pub fn on_cas(&mut self, lanes_addrs: &[(u32, u32)], scope: Scope) {
        if lanes_addrs.len() > 1 {
            self.is_thread = true;
        }
        if self.is_thread {
            for &(lane, addr) in lanes_addrs {
                self.thread_tables[lane as usize].on_cas(addr, scope);
            }
        } else {
            // Warp-level locking: the (single) leader acts for the warp.
            for &(_, addr) in lanes_addrs {
                self.warp_table.on_cas(addr, scope);
            }
        }
    }

    /// Handles a fence executed by the given lanes.
    pub fn on_fence(&mut self, lanes: impl IntoIterator<Item = u32>, scope: Scope) {
        if self.is_thread {
            for lane in lanes {
                self.thread_tables[lane as usize].on_fence(scope);
            }
        } else {
            self.warp_table.on_fence(scope);
        }
    }

    /// Handles an `atomicExch` split (unlock inference).
    pub fn on_exch(&mut self, lanes_addrs: &[(u32, u32)], scope: Scope) {
        if self.is_thread {
            for &(lane, addr) in lanes_addrs {
                self.thread_tables[lane as usize].on_exch(addr, scope);
            }
        } else {
            for &(_, addr) in lanes_addrs {
                self.warp_table.on_exch(addr, scope);
            }
        }
    }

    /// Bloom summary of locks held by `lane` (falls back to the warp table
    /// until per-thread locking is inferred).
    #[must_use]
    pub fn summary(&self, lane: u32) -> u16 {
        if self.is_thread {
            self.thread_tables[lane as usize].summary()
        } else {
            self.warp_table.summary()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_then_fence_holds_lock() {
        let mut t = LockTable::default();
        t.on_cas(0x100, Scope::Device);
        assert_eq!(t.held(), 0, "CAS alone does not hold the lock");
        t.on_fence(Scope::Device);
        assert_eq!(t.held(), 1, "fence activates the lock");
        assert_ne!(t.summary(), 0);
    }

    #[test]
    fn exch_releases_lock() {
        let mut t = LockTable::default();
        t.on_cas(0x100, Scope::Device);
        t.on_fence(Scope::Device);
        t.on_exch(0x100, Scope::Device);
        assert_eq!(t.held(), 0);
        assert_eq!(t.summary(), 0);
    }

    #[test]
    fn exch_without_fence_still_releases() {
        // §6.3: "even if a programmer misses a threadfence, we will infer
        // the atomicExch as unlock".
        let mut t = LockTable::default();
        t.on_cas(0x100, Scope::Device);
        t.on_exch(0x100, Scope::Device);
        assert!(t.entries().iter().all(|e| !e.valid));
    }

    #[test]
    fn block_fence_does_not_activate_device_lock() {
        let mut t = LockTable::default();
        t.on_cas(0x100, Scope::Device);
        t.on_fence(Scope::Block);
        assert_eq!(
            t.held(),
            0,
            "block fence must not activate a device-scope lock"
        );
        t.on_fence(Scope::Device);
        assert_eq!(t.held(), 1);
    }

    #[test]
    fn device_fence_activates_block_lock() {
        // "matching or narrower scope" (§6.3).
        let mut t = LockTable::default();
        t.on_cas(0x100, Scope::Block);
        t.on_fence(Scope::Device);
        assert_eq!(t.held(), 1);
    }

    #[test]
    fn table_holds_three_locks_and_evicts_round_robin() {
        let mut t = LockTable::default();
        for addr in [0x10, 0x20, 0x30] {
            t.on_cas(addr, Scope::Device);
        }
        t.on_fence(Scope::Device);
        assert_eq!(t.held(), 3);
        // Fourth lock evicts the oldest slot.
        t.on_cas(0x40, Scope::Device);
        let hashes: Vec<u32> = t.entries().iter().map(|e| e.hash).collect();
        assert!(hashes.contains(&lock_hash(0x40)));
        assert!(!hashes.contains(&lock_hash(0x10)));
    }

    #[test]
    fn repeated_cas_on_same_lock_is_idempotent() {
        let mut t = LockTable::default();
        // A spinning CAS retries many times before acquiring.
        for _ in 0..100 {
            t.on_cas(0x100, Scope::Device);
        }
        let valid = t.entries().iter().filter(|e| e.valid).count();
        assert_eq!(valid, 1);
    }

    #[test]
    fn single_lane_cas_keeps_warp_level_protocol() {
        let mut w = WarpLockState::default();
        w.on_cas(&[(0, 0x100)], Scope::Device);
        assert!(!w.is_thread());
        w.on_fence([0u32], Scope::Device);
        // Every lane of the warp reports the warp lock.
        assert_ne!(w.summary(0), 0);
        assert_ne!(w.summary(17), 0);
    }

    #[test]
    fn multi_lane_cas_escalates_to_per_thread() {
        let mut w = WarpLockState::default();
        // Two lanes CAS different locks simultaneously (Figure 9).
        w.on_cas(&[(0, 0x100), (1, 0x200)], Scope::Device);
        assert!(w.is_thread());
        w.on_fence([0u32, 1u32], Scope::Device);
        let s0 = w.summary(0);
        let s1 = w.summary(1);
        assert_ne!(s0, 0);
        assert_ne!(s1, 0);
        assert_eq!(s0 & s1, 0, "distinct per-thread locks must not intersect");
        assert_eq!(w.summary(2), 0, "lane 2 holds nothing");
    }

    #[test]
    fn is_thread_is_never_unset() {
        let mut w = WarpLockState::default();
        w.on_cas(&[(0, 0x100), (1, 0x200)], Scope::Device);
        assert!(w.is_thread());
        w.on_exch(&[(0, 0x100), (1, 0x200)], Scope::Device);
        w.on_cas(&[(0, 0x100)], Scope::Device);
        assert!(
            w.is_thread(),
            "§6.3: the detector never reverts to per-warp locks"
        );
    }

    #[test]
    fn bloom_bits_set_at_most_two_bits() {
        for addr in (0..10_000u32).step_by(97) {
            let bits = bloom_bits(lock_hash(addr));
            let n = bits.count_ones();
            assert!(n == 1 || n == 2, "addr {addr}: {n} bits");
        }
    }

    #[test]
    fn distinct_locks_usually_have_disjoint_blooms() {
        // Not a guarantee (it's a Bloom filter) — but the common case must
        // hold or R5 would miss everything.
        let mut disjoint = 0;
        let total = 100;
        for i in 0..total {
            let a = bloom_bits(lock_hash(0x1000 + i * 4));
            let b = bloom_bits(lock_hash(0x9000 + i * 4));
            if a & b == 0 {
                disjoint += 1;
            }
        }
        assert!(disjoint > total / 2, "only {disjoint}/{total} disjoint");
    }
}
