//! Sharded, optionally threaded iGUARD: intra-launch detection
//! parallelism with a deterministic, serial-identical merge.
//!
//! [`ShardedIguard`] partitions the flat per-word tables of
//! [`crate::engine::Engine`] into `S` hashed-address shards (`S` a power
//! of two): an access to word `w` routes to shard `w & (S-1)` and is
//! checked against that shard's tables at sub-word `w >> log2(S)` — an
//! injective per-shard mapping, so shards never share state and need no
//! locks. Each shard runs the **same** engine code as the serial
//! detector.
//!
//! ## Determinism
//!
//! The *front half* (lock inference, coalescing, cost charges,
//! synchronization snapshots) runs in the instrumentation callback, in
//! program order, exactly as the serial detector's — so every event
//! carries its full resolved context plus a global sequence number.
//! Per-word event order is preserved because a word always maps to the
//! same shard and each shard consumes its queue FIFO. The one piece of
//! *live* state the engine reads at check time — fence counters, via
//! `md_view` — is replicated by broadcasting fence events to every
//! shard in stream order (barrier counters are only consumed through
//! access-time snapshots, so they need no replica).
//!
//! Race candidates come back seq-tagged; the merge sorts them and
//! replays through the one central [`RaceReporter`] — same dedup order,
//! same channel charges, same fault-plane draws as a serial run. Race
//! *reports* (and every verdict-affecting counter) are therefore
//! byte-identical to [`crate::Iguard`] for any shard count, threaded or
//! inline, which `bench/tests/shard_determinism.rs` pins down to fault
//! injection on the report channel.
//!
//! What is **not** serial-identical: the simulated-cycle cost of the
//! metadata plane. Each shard owns its own (smaller) UVM region, so
//! page-fault patterns — and hence `uvm_cycles` and Setup/Detection
//! cycle totals — are a different (still deterministic) timing model.
//! Verdicts never depend on those cycles.
//!
//! ## Execution modes
//!
//! - **Inline** (`threaded: false`): shards are processed synchronously
//!   on the calling thread — the determinism reference, and the right
//!   choice on single-core hosts.
//! - **Threaded** (`threaded: true`): one worker thread per shard, fed
//!   event batches through the bounded [`nvbit_sim::pipeline`] stage, so
//!   detection drains while the machine continues simulating. Dedicated
//!   threads (rather than a shared job pool) because the workers are
//!   long-lived stateful stages, not run-to-completion jobs; harness-
//!   level fan-out still goes through `bench::driver` (DESIGN.md §12).

use std::mem;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use faults::{FaultConfig, FaultStats};
use gpu_sim::hook::{AccessKind, LaneAccess, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::{AtomOp, Scope, Space};
use gpu_sim::timing::{Clock, CostCategory, Phase};
use nvbit_sim::channel::ChannelStats;
use nvbit_sim::pipeline::{self, PipeStats, Receiver, Sender};
use nvbit_sim::Tool;
use uvm_sim::{UvmConfig, UvmStats};

use crate::bitfield::AccessorInfo;
use crate::checks::{AccessType, CurrAccess, RaceKind};
use crate::config::IguardConfig;
use crate::detector::{Degradation, IguardStats};
use crate::engine::{race_index, AccessCtx, Engine, EngineParams, Sink};
use crate::error::IguardError;
use crate::locks::WarpLockState;
use crate::metadata::{MetaStats, MetadataTable, TableConfig, ENTRY_BYTES};
use crate::report::{RaceRecord, RaceReporter, RaceSite};
use crate::syncmeta::SyncMetadata;

/// Concurrency knobs for [`ShardedIguard`]. All default to the inline,
/// single-threaded shape, which is byte-identical to the serial detector
/// and safe on any host.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of hashed-address shards; rounded up to a power of two,
    /// clamped to at least 1.
    pub shards: usize,
    /// Run each shard on its own worker thread, fed through the bounded
    /// pipeline stage. `false` processes shards inline (deterministic
    /// reference; no threads).
    pub threaded: bool,
    /// Bounded pipeline capacity, in *batches* per shard queue. Full
    /// queues apply backpressure to the simulation thread; nothing is
    /// ever dropped.
    pub queue_capacity: usize,
    /// Events buffered per shard before a batch is shipped to its
    /// worker (threaded mode only; inline processes immediately).
    pub batch_events: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            threaded: false,
            queue_capacity: 64,
            batch_events: 1024,
        }
    }
}

impl ShardConfig {
    /// Inline sharding with `shards` shards (the determinism reference).
    #[must_use]
    pub fn inline(shards: usize) -> Self {
        ShardConfig {
            shards,
            threaded: false,
            ..ShardConfig::default()
        }
    }

    /// One worker thread per shard.
    #[must_use]
    pub fn threaded(shards: usize) -> Self {
        ShardConfig {
            shards,
            threaded: true,
            ..ShardConfig::default()
        }
    }
}

/// Table-construction parameters fixed for the detector's lifetime.
#[derive(Debug, Clone)]
struct TableParams {
    uvm: UvmConfig,
    addr_scale: u64,
    capacity_words: Option<usize>,
    faults: FaultConfig,
}

/// One routed access event, fully resolved by the front half.
#[derive(Debug, Clone, Copy)]
struct AccessEvent {
    /// Global submission order; the merge key.
    seq: u64,
    /// Full word index (the shard strips its bits).
    word: u32,
    addr: u32,
    pc: usize,
    /// Index into the front's kernel registry (name + line table).
    kernel: u32,
    warp: u32,
    lane: u32,
    block: u32,
    wpb: u32,
    step: u64,
    active_mask: u32,
    kind: AccessType,
    snap: AccessorInfo,
    lock_summary: u16,
}

/// One event in a shard's stream.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Access(AccessEvent),
    /// Fence broadcast (every shard sees every fence, in stream order),
    /// keeping each replica's fence counters equal to the live ones.
    Fence { warp: u32, lane: u32, scope: Scope },
}

/// Launch reset broadcast to every shard.
#[derive(Debug, Clone)]
struct LaunchMsg {
    /// Per-shard table words (`ceil(backing_words / shards)`).
    words: usize,
    total_warps: u32,
    window: u64,
    params: EngineParams,
    grid_dim: u32,
    warps_per_block: u32,
    /// Per-shard slice of the managed region's virtual size.
    virtual_bytes: u64,
    /// Per-shard slice of the free-device-memory prefault budget.
    device_budget_bytes: u64,
    /// Bytes to prefault on first launch (`None` when prefault is off).
    prefault_bytes: Option<u64>,
    /// Measure wall time in the worker (phase profiling).
    profiling: bool,
}

/// Worker protocol.
#[derive(Debug)]
enum ShardMsg {
    Launch(LaunchMsg),
    Batch(Vec<Ev>),
    /// Reply with the accumulated [`ShardReply`] and reset the delta.
    Flush,
}

/// A race verdict deferred for the deterministic merge.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    seq: u64,
    kind: RaceKind,
    kernel: u32,
    pc: usize,
    addr: u32,
    access: AccessType,
    warp: u32,
    lane: u32,
    block: u32,
    prev_warp: u32,
    prev_lane: u32,
}

/// Everything a shard accumulated since the last flush.
#[derive(Debug, Default)]
struct ShardDelta {
    uvm_cycles: u64,
    contended_accesses: u64,
    contention_cycles: u64,
    missed_checks: u64,
    orphan_events: u64,
    table_init_failures: u64,
    safe_hits: [u64; 6],
    /// Prefault cycles from this flush window (first launch only).
    setup_cycles: u64,
    candidates: Vec<Candidate>,
    /// Wall time spent checking (threaded mode; profiling only).
    detect_ns: u64,
    /// Wall time inside metadata loads (profiling only).
    uvm_ns: u64,
}

/// Flush response: the delta plus cumulative table-level snapshots.
#[derive(Debug)]
struct ShardReply {
    delta: ShardDelta,
    meta: MetaStats,
    uvm: UvmStats,
    faults: FaultStats,
}

/// The engine [`Sink`] of one shard: observations accumulate into the
/// delta; race verdicts become seq-tagged candidates.
struct ShardSink<'a> {
    delta: &'a mut ShardDelta,
    ev: &'a AccessEvent,
    profiling: bool,
}

impl Sink for ShardSink<'_> {
    fn profiling(&self) -> bool {
        self.profiling
    }

    fn uvm_ns(&mut self, ns: u64) {
        self.delta.uvm_ns += ns;
    }

    fn uvm_cycles(&mut self, cycles: u64) {
        self.delta.uvm_cycles += cycles;
    }

    fn missed_check(&mut self) {
        self.delta.missed_checks += 1;
    }

    fn contended(&mut self, cycles: u64) {
        self.delta.contended_accesses += 1;
        self.delta.contention_cycles += cycles;
    }

    fn safe_hit(&mut self, idx: usize) {
        self.delta.safe_hits[idx] += 1;
    }

    fn race(&mut self, kind: RaceKind, curr: &CurrAccess, md_info: AccessorInfo) {
        self.delta.candidates.push(Candidate {
            seq: self.ev.seq,
            kind,
            kernel: self.ev.kernel,
            pc: self.ev.pc,
            addr: self.ev.addr,
            access: curr.kind,
            warp: curr.warp_id,
            lane: curr.lane,
            block: curr.block_id,
            prev_warp: md_info.warp_id,
            prev_lane: md_info.lane,
        });
    }
}

/// One shard's private state: an engine over its sub-word tables plus a
/// fence-tracking replica of the synchronization metadata.
#[derive(Debug)]
struct ShardState {
    engine: Engine,
    sync: Option<SyncMetadata>,
    delta: ShardDelta,
    table_params: TableParams,
    profiling: bool,
}

impl ShardState {
    fn new(table_params: TableParams) -> Self {
        ShardState {
            engine: Engine::default(),
            sync: None,
            delta: ShardDelta::default(),
            table_params,
            profiling: false,
        }
    }

    fn begin_launch(&mut self, m: &LaunchMsg) {
        self.profiling = m.profiling;
        self.sync = Some(SyncMetadata::new(m.grid_dim, m.warps_per_block));
        self.engine
            .begin_launch(m.words, m.total_warps, m.window, m.params);
        match &mut self.engine.table {
            Some(table) => table.begin_epoch(),
            None => {
                match MetadataTable::new(TableConfig {
                    words: m.words,
                    uvm: self.table_params.uvm.clone(),
                    virtual_bytes: m.virtual_bytes,
                    device_budget_bytes: m.device_budget_bytes,
                    addr_scale: self.table_params.addr_scale,
                    capacity_words: self.table_params.capacity_words,
                    faults: self.table_params.faults.clone(),
                }) {
                    Ok(mut table) => {
                        if let Some(bytes) = m.prefault_bytes {
                            self.delta.setup_cycles += table.prefault(bytes.max(ENTRY_BYTES));
                        }
                        self.engine.table = Some(table);
                    }
                    Err(_) => {
                        // Sub-word tables always cover ≥ 1 word, so this
                        // only fires on a degenerate zero-word device;
                        // degrade like the serial detector does.
                        self.delta.table_init_failures += 1;
                    }
                }
            }
        }
    }

    fn apply(&mut self, ev: &Ev, shift: u32) {
        match ev {
            Ev::Fence { warp, lane, scope } => {
                if let Some(sync) = self.sync.as_mut() {
                    sync.fence(*scope, *warp, *lane);
                }
            }
            Ev::Access(a) => {
                if self.engine.table.is_none() {
                    self.delta.orphan_events += 1;
                    return;
                }
                let Some(sync) = self.sync.as_ref() else {
                    self.delta.orphan_events += 1;
                    return;
                };
                let ctx = AccessCtx {
                    word: a.word >> shift,
                    warp: a.warp,
                    lane: a.lane,
                    block: a.block,
                    wpb: a.wpb,
                    step: a.step,
                    active_mask: a.active_mask,
                    kind: a.kind,
                    snap: a.snap,
                    lock_summary: a.lock_summary,
                };
                let mut sink = ShardSink {
                    delta: &mut self.delta,
                    ev: a,
                    profiling: self.profiling,
                };
                self.engine.process(&ctx, sync, &mut sink);
            }
        }
    }

    fn take_reply(&mut self) -> ShardReply {
        ShardReply {
            delta: mem::take(&mut self.delta),
            meta: self
                .engine
                .table
                .as_ref()
                .map(MetadataTable::meta_stats)
                .unwrap_or_default(),
            uvm: self
                .engine
                .table
                .as_ref()
                .map(MetadataTable::uvm_stats)
                .unwrap_or_default(),
            faults: self
                .engine
                .table
                .as_ref()
                .map(MetadataTable::fault_stats)
                .unwrap_or_default(),
        }
    }
}

fn worker_loop(mut state: ShardState, shift: u32, rx: Receiver<ShardMsg>, reply: Sender<ShardReply>) {
    while let Some(msg) = rx.recv() {
        match msg {
            ShardMsg::Launch(m) => state.begin_launch(&m),
            ShardMsg::Batch(evs) => {
                let t0 = state.profiling.then(Instant::now);
                for ev in &evs {
                    state.apply(ev, shift);
                }
                if let Some(t) = t0 {
                    state.delta.detect_ns += t.elapsed().as_nanos() as u64;
                }
            }
            ShardMsg::Flush => {
                if reply.send(state.take_reply()).is_err() {
                    break;
                }
            }
        }
    }
}

/// A shard worker's handles on the coordinator side.
#[derive(Debug)]
struct Worker {
    tx: Sender<ShardMsg>,
    reply_rx: Receiver<ShardReply>,
    handle: Option<JoinHandle<()>>,
    /// Events buffered toward the next batch.
    batch: Vec<Ev>,
}

#[derive(Debug)]
enum Exec {
    Inline(Vec<ShardState>),
    Threads(Vec<Worker>),
}

/// A kernel seen by the front half: interned name + line table, so
/// deferred race candidates can be resolved into full [`RaceRecord`]s
/// at merge time without per-event allocation.
#[derive(Debug)]
struct KernelEntry {
    name: Arc<str>,
    lines: Vec<Option<String>>,
}

/// The sharded iGUARD detector (see module docs). Drop-in replacement
/// for [`crate::Iguard`] as an `nvbit-sim` [`Tool`]; identical race
/// reports, shard-parallel checking.
#[derive(Debug)]
pub struct ShardedIguard {
    cfg: IguardConfig,
    scfg: ShardConfig,
    /// `shards - 1`; routing mask over the low word bits.
    mask: u32,
    /// `log2(shards)`; sub-word shift.
    shift: u32,
    sync: Option<SyncMetadata>,
    locks: Vec<WarpLockState>,
    stats: IguardStats,
    reporter: RaceReporter,
    first_launch: bool,
    profiling: bool,
    seq: u64,
    kernels: Vec<KernelEntry>,
    kernel_cursor: usize,
    scratch_words: Vec<u32>,
    scratch_pairs: Vec<(u32, u32)>,
    exec: Exec,
    /// Cumulative per-shard snapshots, refreshed at every flush.
    shard_meta: Vec<MetaStats>,
    shard_uvm: Vec<UvmStats>,
    shard_faults: Vec<FaultStats>,
}

impl ShardedIguard {
    /// Creates a sharded detector. Infallible like [`crate::Iguard::new`]
    /// (zero report capacity clamps to 1).
    #[must_use]
    pub fn new(mut cfg: IguardConfig, scfg: ShardConfig) -> Self {
        cfg.report_capacity = cfg.report_capacity.max(1);
        ShardedIguard::try_new(cfg, scfg).expect("report capacity clamped to >= 1")
    }

    /// Fallible constructor surfacing configuration errors.
    pub fn try_new(cfg: IguardConfig, mut scfg: ShardConfig) -> Result<Self, IguardError> {
        scfg.shards = scfg.shards.clamp(1, 1 << 16).next_power_of_two();
        let reporter = RaceReporter::with_faults(cfg.report_capacity, &cfg.faults)?;
        let shards = scfg.shards;
        let shift = shards.trailing_zeros();
        let table_params = TableParams {
            uvm: cfg.uvm.clone(),
            addr_scale: cfg.addr_scale,
            capacity_words: cfg
                .table_capacity_words
                .map(|c| (c / shards).max(1)),
            faults: cfg.faults.clone(),
        };
        let exec = if scfg.threaded {
            let workers = (0..shards)
                .map(|i| {
                    let (tx, rx) = pipeline::bounded::<ShardMsg>(scfg.queue_capacity);
                    let (reply_tx, reply_rx) = pipeline::bounded::<ShardReply>(1);
                    let state = ShardState::new(table_params.clone());
                    let handle = std::thread::Builder::new()
                        .name(format!("iguard-shard-{i}"))
                        .spawn(move || worker_loop(state, shift, rx, reply_tx))
                        .expect("spawn shard worker");
                    Worker {
                        tx,
                        reply_rx,
                        handle: Some(handle),
                        batch: Vec::with_capacity(scfg.batch_events.max(1)),
                    }
                })
                .collect();
            Exec::Threads(workers)
        } else {
            Exec::Inline(
                (0..shards)
                    .map(|_| ShardState::new(table_params.clone()))
                    .collect(),
            )
        };
        Ok(ShardedIguard {
            cfg,
            mask: (shards - 1) as u32,
            shift,
            scfg,
            sync: None,
            locks: Vec::new(),
            stats: IguardStats::default(),
            reporter,
            first_launch: true,
            profiling: false,
            seq: 0,
            kernels: Vec::new(),
            kernel_cursor: 0,
            scratch_words: Vec::with_capacity(32),
            scratch_pairs: Vec::with_capacity(32),
            exec,
            shard_meta: vec![MetaStats::default(); shards],
            shard_uvm: vec![UvmStats::default(); shards],
            shard_faults: vec![FaultStats::default(); shards],
        })
    }

    /// Number of shards (power of two).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.scfg.shards
    }

    /// Detector counters (complete after each launch's merge).
    #[must_use]
    pub fn stats(&self) -> IguardStats {
        self.stats
    }

    /// Everything the detector degraded on, aggregated across shards.
    #[must_use]
    pub fn degradation(&self) -> Degradation {
        let mut meta = MetaStats::default();
        for m in &self.shard_meta {
            meta.capacity_evictions += m.capacity_evictions;
            meta.injected_evictions += m.injected_evictions;
            meta.injected_aliases += m.injected_aliases;
        }
        let uvm = self.uvm_stats();
        Degradation {
            missed_checks: self.stats.missed_checks,
            orphan_events: self.stats.orphan_events,
            table_init_failures: self.stats.table_init_failures,
            meta,
            channel: self.reporter.channel_stats(),
            uvm_injected_evictions: uvm.injected_evictions,
            uvm_injected_oom_denials: uvm.injected_oom_denials,
        }
    }

    /// Injected-fault counters summed over the reporter and every
    /// shard's metadata plane.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self.reporter.fault_stats();
        for f in &self.shard_faults {
            total.accumulate(f);
        }
        total
    }

    /// Race-report channel accounting (one central channel).
    #[must_use]
    pub fn channel_stats(&self) -> ChannelStats {
        self.reporter.channel_stats()
    }

    /// UVM statistics summed across every shard's metadata region.
    #[must_use]
    pub fn uvm_stats(&self) -> UvmStats {
        let mut total = UvmStats::default();
        for u in &self.shard_uvm {
            total.faults += u.faults;
            total.evictions += u.evictions;
            total.prefaulted_pages += u.prefaulted_pages;
            total.fault_cycles += u.fault_cycles;
            total.prefault_cycles += u.prefault_cycles;
            total.injected_evictions += u.injected_evictions;
            total.injected_oom_denials += u.injected_oom_denials;
            total.injected_cycles += u.injected_cycles;
        }
        total
    }

    /// Per-shard pipeline counters (empty in inline mode) — the
    /// backpressure/utilization evidence `bench --bin perf` reports.
    #[must_use]
    pub fn pipe_stats(&self) -> Vec<PipeStats> {
        match &self.exec {
            Exec::Inline(_) => Vec::new(),
            Exec::Threads(workers) => workers.iter().map(|w| w.tx.stats()).collect(),
        }
    }

    /// Number of unique races detected so far.
    #[must_use]
    pub fn unique_races(&self) -> usize {
        self.reporter.unique_races()
    }

    /// Dynamic race occurrences (before deduplication).
    #[must_use]
    pub fn dynamic_races(&self) -> u64 {
        self.reporter.dynamic_races
    }

    /// Drains all shipped race reports.
    pub fn races(&mut self) -> Vec<RaceRecord> {
        self.reporter.drain()
    }

    /// Drains reports grouped into distinct sites (the Table 4 unit).
    pub fn race_sites(&mut self) -> Vec<RaceSite> {
        let records = self.reporter.drain();
        crate::report::group_sites(&records)
    }

    /// Resolves `kernel` to a registry index, interning on first sight.
    fn kernel_index(&mut self, kernel: &gpu_sim::kernel::Kernel) -> u32 {
        if let Some(e) = self.kernels.get(self.kernel_cursor) {
            if Arc::ptr_eq(&e.name, &kernel.name) {
                return self.kernel_cursor as u32;
            }
        }
        if let Some(i) = self
            .kernels
            .iter()
            .position(|e| Arc::ptr_eq(&e.name, &kernel.name) || *e.name == *kernel.name)
        {
            self.kernel_cursor = i;
            return i as u32;
        }
        self.kernels.push(KernelEntry {
            name: kernel.name.clone(),
            lines: kernel.lines.clone(),
        });
        self.kernel_cursor = self.kernels.len() - 1;
        self.kernel_cursor as u32
    }

    /// Routes one event to its shard (inline: process now; threaded:
    /// buffer toward a batch).
    fn dispatch(&mut self, shard: usize, ev: Ev) {
        match &mut self.exec {
            Exec::Inline(states) => states[shard].apply(&ev, self.shift),
            Exec::Threads(workers) => {
                let w = &mut workers[shard];
                w.batch.push(ev);
                if w.batch.len() >= self.scfg.batch_events.max(1) {
                    let batch = mem::replace(
                        &mut w.batch,
                        Vec::with_capacity(self.scfg.batch_events.max(1)),
                    );
                    w.tx.send(ShardMsg::Batch(batch))
                        .expect("shard worker alive");
                }
            }
        }
    }

    /// Broadcasts one event to every shard (fences).
    fn broadcast(&mut self, ev: Ev) {
        for shard in 0..self.scfg.shards {
            self.dispatch(shard, ev);
        }
    }

    /// Flushes every shard and merges: counter deltas fold into
    /// [`IguardStats`], deferred cycles charge the clock, and race
    /// candidates replay through the central reporter in global
    /// submission order.
    fn flush_shards(&mut self, clock: &mut Clock) {
        let replies: Vec<ShardReply> = match &mut self.exec {
            Exec::Inline(states) => states.iter_mut().map(ShardState::take_reply).collect(),
            Exec::Threads(workers) => {
                for w in workers.iter_mut() {
                    if !w.batch.is_empty() {
                        let batch = mem::take(&mut w.batch);
                        w.tx.send(ShardMsg::Batch(batch)).expect("shard worker alive");
                    }
                    w.tx.send(ShardMsg::Flush).expect("shard worker alive");
                }
                workers
                    .iter()
                    .map(|w| w.reply_rx.recv().expect("shard worker replies"))
                    .collect()
            }
        };

        let mut candidates: Vec<Candidate> = Vec::new();
        for (i, r) in replies.into_iter().enumerate() {
            let d = r.delta;
            self.stats.uvm_cycles += d.uvm_cycles;
            self.stats.contended_accesses += d.contended_accesses;
            self.stats.contention_cycles += d.contention_cycles;
            self.stats.missed_checks += d.missed_checks;
            self.stats.orphan_events += d.orphan_events;
            self.stats.table_init_failures += d.table_init_failures;
            for (acc, hit) in self.stats.safe_hits.iter_mut().zip(d.safe_hits) {
                *acc += hit;
            }
            // Deferred serial charges: additive, so applying them at the
            // merge leaves end-of-run category totals exactly where the
            // serial schedule would have put them.
            if d.uvm_cycles + d.contention_cycles > 0 {
                clock.charge_serial(CostCategory::Detection, d.uvm_cycles + d.contention_cycles);
            }
            if d.setup_cycles > 0 {
                clock.charge_serial(CostCategory::Setup, d.setup_cycles);
            }
            if self.profiling {
                if d.detect_ns > 0 {
                    clock.add_phase_ns(Phase::Detect, d.detect_ns);
                }
                if d.uvm_ns > 0 {
                    clock.add_phase_ns(Phase::Uvm, d.uvm_ns);
                }
            }
            self.shard_meta[i] = r.meta;
            self.shard_uvm[i] = r.uvm;
            self.shard_faults[i] = r.faults;
            candidates.extend(d.candidates);
        }

        // Deterministic merge: global submission order. Seqs are unique,
        // so the sort is a total order independent of shard interleaving.
        candidates.sort_unstable_by_key(|c| c.seq);
        for c in &candidates {
            self.stats.race_hits[race_index(c.kind)] += 1;
            let ke = &self.kernels[c.kernel as usize];
            let record = RaceRecord {
                kernel: ke.name.clone(),
                pc: c.pc,
                line: ke.lines.get(c.pc).and_then(Clone::clone),
                addr: c.addr,
                kind: c.kind,
                access: c.access,
                warp: c.warp,
                lane: c.lane,
                block: c.block,
                prev_warp: c.prev_warp,
                prev_lane: c.prev_lane,
            };
            self.reporter.report(record, clock);
        }
    }

    /// The front half of one lane access: orphan accounting, sequence
    /// stamping, live-state capture, and routing.
    fn route_access(
        &mut self,
        lane_access: &LaneAccess,
        kind: AccessType,
        access: &MemAccess<'_>,
    ) {
        if self.sync.is_none() || self.locks.is_empty() {
            self.stats.orphan_events += 1;
            return;
        }
        self.stats.accesses += 1;

        let warp = access.global_warp;
        let lane = lane_access.lane;
        let word = lane_access.addr / 4;
        let snap = self
            .sync
            .as_ref()
            .expect("guarded above")
            .snapshot(warp, lane);
        let lock_summary = self.locks[warp as usize].summary(lane);
        let kernel = self.kernel_index(access.kernel);
        let seq = self.seq;
        self.seq += 1;

        let ev = Ev::Access(AccessEvent {
            seq,
            word,
            addr: lane_access.addr,
            pc: access.pc,
            kernel,
            warp,
            lane,
            block: access.block_id,
            wpb: access.warps_per_block,
            step: access.step,
            active_mask: access.active_mask,
            kind,
            snap,
            lock_summary,
        });
        let shard = (word & self.mask) as usize;
        self.dispatch(shard, ev);
    }
}

impl Tool for ShardedIguard {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.stats.launches += 1;
        self.profiling = clock.profiling();
        let window = if self.cfg.contention_window > 0 {
            self.cfg.contention_window
        } else {
            64.max(u64::from(info.total_warps))
        };
        self.sync = Some(SyncMetadata::new(info.grid_dim, info.warps_per_block));
        self.locks = vec![WarpLockState::default(); info.total_warps as usize];

        let shards = self.scfg.shards as u64;
        let msg = LaunchMsg {
            words: info.backing_words.div_ceil(self.scfg.shards).max(1),
            total_warps: info.total_warps,
            window,
            params: EngineParams {
                backoff: self.cfg.backoff,
                contention_base: self.cfg.contention_base,
                its_support: self.cfg.its_support,
                history_depth: self.cfg.history_depth,
            },
            grid_dim: info.grid_dim,
            warps_per_block: info.warps_per_block,
            virtual_bytes: (4 * info.device_capacity_bytes / shards).max(ENTRY_BYTES),
            device_budget_bytes: info.free_device_bytes / shards,
            prefault_bytes: (self.first_launch && self.cfg.prefault).then(|| {
                (info.app_footprint_bytes.saturating_mul(4) / shards).max(ENTRY_BYTES)
            }),
            profiling: self.profiling,
        };
        if self.first_launch {
            // The fixed setup cost is per-detector, not per-shard; the
            // per-shard prefault cycles arrive with the first flush.
            clock.charge_serial(CostCategory::Setup, self.cfg.setup_fixed_cost);
            self.first_launch = false;
        }
        match &mut self.exec {
            Exec::Inline(states) => {
                for s in states.iter_mut() {
                    s.begin_launch(&msg);
                }
            }
            Exec::Threads(workers) => {
                for w in workers.iter_mut() {
                    w.tx.send(ShardMsg::Launch(msg.clone()))
                        .expect("shard worker alive");
                }
            }
        }
        clock.charge_serial(CostCategory::Misc, self.cfg.misc_cost_per_launch);
    }

    fn at_exit(&mut self, _info: &LaunchInfo, clock: &mut Clock) {
        // Launch end is the merge barrier: drain every shard, fold the
        // deltas, and replay race candidates in submission order.
        self.flush_shards(clock);
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        if access.space != Space::Global {
            return;
        }
        let t0 = clock.profiling().then(Instant::now);
        self.on_global_mem(access, clock);
        if let Some(t) = t0 {
            clock.add_phase_ns(Phase::Detect, t.elapsed().as_nanos() as u64);
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        clock.charge(CostCategory::Detection, 4);
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                if let Some(s) = self.sync.as_mut() {
                    s.block_barrier(*block_id);
                }
            }
            SyncEvent::WarpBarrier { global_warp, .. } => {
                if let Some(s) = self.sync.as_mut() {
                    s.warp_barrier(*global_warp);
                }
            }
            SyncEvent::Fence {
                scope,
                global_warp,
                tids,
                ..
            } => {
                let Some(sync) = self.sync.as_mut() else {
                    self.stats.orphan_events += 1;
                    return;
                };
                for &(lane, _tid) in tids.iter() {
                    sync.fence(*scope, *global_warp, lane);
                }
                let lanes: Vec<u32> = tids.iter().map(|&(lane, _)| lane).collect();
                if let Some(wl) = self.locks.get_mut(*global_warp as usize) {
                    wl.on_fence(lanes.clone(), *scope);
                }
                // Fence counters are the one live read on the check path:
                // replicate them in every shard, in stream order.
                for lane in lanes {
                    self.broadcast(Ev::Fence {
                        warp: *global_warp,
                        lane,
                        scope: *scope,
                    });
                }
            }
        }
    }
}

impl ShardedIguard {
    /// The global-memory half of [`Tool::on_mem`]: identical front-half
    /// logic to the serial detector (kind classification, lock
    /// inference, coalescing, data-parallel cost charges), ending in a
    /// route instead of an inline check.
    fn on_global_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        let kind = match access.kind {
            AccessKind::Load => AccessType::Load,
            AccessKind::Store if access.volatile => AccessType::Atomic { scope_block: false },
            AccessKind::Store => AccessType::Store,
            AccessKind::Atomic { op, scope } => {
                if matches!(op, AtomOp::Cas | AtomOp::Exch) {
                    let wl = &mut self.locks[access.global_warp as usize];
                    if let [l] = access.lanes {
                        let pair = [(l.lane, l.addr)];
                        match op {
                            AtomOp::Cas => wl.on_cas(&pair, scope),
                            AtomOp::Exch => wl.on_exch(&pair, scope),
                            _ => unreachable!("matched above"),
                        }
                    } else {
                        self.scratch_pairs.clear();
                        self.scratch_pairs
                            .extend(access.lanes.iter().map(|l| (l.lane, l.addr)));
                        match op {
                            AtomOp::Cas => wl.on_cas(&self.scratch_pairs, scope),
                            AtomOp::Exch => wl.on_exch(&self.scratch_pairs, scope),
                            _ => unreachable!("matched above"),
                        }
                    }
                }
                AccessType::Atomic {
                    scope_block: scope == Scope::Block,
                }
            }
        };

        clock.charge(
            CostCategory::Detection,
            self.cfg.check_cost + self.cfg.md_lock_cost,
        );

        let coalescible = self.cfg.coalescing
            && !matches!(kind, AccessType::Store)
            && access.lanes.len() > 1
            && access.lanes.iter().all(|l| l.addr == access.lanes[0].addr);
        if coalescible {
            self.stats.coalesced_saved += access.lanes.len() as u64 - 1;
            let rep = access.lanes[0];
            self.route_access(&rep, kind, access);
        } else {
            if access.lanes.len() > 1 {
                self.scratch_words.clear();
                self.scratch_words
                    .extend(access.lanes.iter().map(|l| l.addr / 4));
                self.scratch_words.sort_unstable();
                self.scratch_words.dedup();
                let dup = access.lanes.len() - self.scratch_words.len();
                if dup > 0 {
                    clock.charge(
                        CostCategory::Detection,
                        dup as u64 * (self.cfg.check_cost + self.cfg.md_lock_cost),
                    );
                }
            }
            for i in 0..access.lanes.len() {
                let la = access.lanes[i];
                self.route_access(&la, kind, access);
            }
        }
    }
}

impl Drop for ShardedIguard {
    fn drop(&mut self) {
        if let Exec::Threads(workers) = &mut self.exec {
            // Closing the message pipes ends each worker loop; join so no
            // detached thread outlives the detector.
            for w in workers.iter_mut() {
                let (closed_tx, _closed_rx) = pipeline::bounded::<ShardMsg>(1);
                drop(mem::replace(&mut w.tx, closed_tx));
            }
            for w in workers.iter_mut() {
                if let Some(h) = w.handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}
