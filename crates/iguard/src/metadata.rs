//! The memory-metadata table: one 16-byte entry per 4-byte word of global
//! memory (4× overhead, §6.1), stored packed exactly as Figure 4 and backed
//! by a simulated UVM managed region so no device memory is pinned.
//!
//! Entries are direct-mapped by word index with an address tag; a tag
//! mismatch means the slot is being reused for a different address and the
//! entry re-initializes (equivalent to a first access). A per-slot *epoch*
//! invalidates all entries between kernel launches — the implicit
//! device-wide barrier at grid completion orders everything across kernels,
//! so carrying metadata over would only manufacture false positives.
//! (The paper's detector reinitializes metadata at tool setup; the epoch is
//! the zero-cost equivalent for a long-lived table.)

use crate::bitfield::MetadataEntry;
use uvm_sim::{ManagedRegion, Touch, UvmConfig};

/// Bytes of metadata per 4-byte word (Figure 4).
pub const ENTRY_BYTES: u64 = 16;

/// The UVM-backed metadata table.
#[derive(Debug)]
pub struct MetadataTable {
    acc: Vec<u64>,
    wr: Vec<u64>,
    epoch: Vec<u32>,
    cur_epoch: u32,
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// per-access direct mapping is a mask, not a division.
    slot_mask: usize,
    /// `log2(capacity)`; the tag is a shift, not a division.
    tag_shift: u32,
    uvm: ManagedRegion,
    /// Multiplier mapping backing word indices to *logical* metadata
    /// offsets, so footprint-scaling experiments (Figure 14) exercise the
    /// paging behaviour of multi-GB metadata with small backing arrays.
    addr_scale: u64,
}

/// Result of a metadata load.
#[derive(Debug, Clone, Copy)]
pub struct MetaLoad {
    /// Decoded entry; `entry.flags.valid == false` means first access
    /// (slot empty, reused for a new tag, or stale epoch).
    pub entry: MetadataEntry,
    /// UVM cycles incurred touching the entry's page (0 when resident).
    pub uvm_cycles: u64,
}

impl MetadataTable {
    /// Creates a table covering `words` 4-byte words of global memory.
    ///
    /// `virtual_bytes` is the managed region's size (the paper allocates
    /// ~4× of GPU memory capacity); `device_budget_bytes` bounds residency.
    #[must_use]
    pub fn new(
        words: usize,
        uvm_cfg: UvmConfig,
        virtual_bytes: u64,
        device_budget_bytes: u64,
        addr_scale: u64,
    ) -> Self {
        assert!(words > 0, "metadata table cannot be empty");
        // Power-of-two capacity: slot/tag become mask/shift. For every
        // in-bounds word index (< `words`) the mapping is identical to the
        // modulo/divide scheme, so behaviour is unchanged in practice.
        let capacity = words.next_power_of_two();
        // Slot storage grows lazily to the touched high-water mark (the
        // mapping is identity for in-bounds words, so this is equivalent
        // to full preallocation); only the mask/shift use `capacity`.
        MetadataTable {
            acc: Vec::new(),
            wr: Vec::new(),
            epoch: Vec::new(),
            cur_epoch: 0,
            slot_mask: capacity - 1,
            tag_shift: capacity.trailing_zeros(),
            uvm: ManagedRegion::new(uvm_cfg, virtual_bytes.max(ENTRY_BYTES), device_budget_bytes),
            addr_scale: addr_scale.max(1),
        }
    }

    /// Number of entries (the power-of-two capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot_mask + 1
    }

    /// Whether the table is empty (never true; see `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grows the slot arrays to cover `slot`. Fresh slots read as
    /// epoch-stale (see `load`), exactly what a zeroed preallocation
    /// yields for a never-written entry.
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.acc.len() {
            let n = (slot + 1).next_power_of_two().min(self.slot_mask + 1);
            self.acc.resize(n, 0);
            self.wr.resize(n, 0);
            self.epoch.resize(n, 0);
        }
    }

    /// Invalidates every entry (new kernel launch).
    pub fn begin_epoch(&mut self) {
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
    }

    /// Prefaults up to `max_bytes` of the managed metadata region
    /// (`cudaMemset` warm-up); returns setup cycles to charge.
    pub fn prefault(&mut self, max_bytes: u64) -> u64 {
        self.uvm.prefault(max_bytes)
    }

    /// UVM statistics (faults, evictions, prefaulted pages).
    #[must_use]
    pub fn uvm_stats(&self) -> uvm_sim::UvmStats {
        self.uvm.stats()
    }

    fn slot(&self, word_idx: u32) -> usize {
        word_idx as usize & self.slot_mask
    }

    fn tag(&self, word_idx: u32) -> u16 {
        ((word_idx as usize >> self.tag_shift) & 0x3FF) as u16
    }

    /// Loads the entry for `word_idx`, touching its UVM page.
    #[must_use]
    pub fn load(&mut self, word_idx: u32) -> MetaLoad {
        let off = (u64::from(word_idx) * ENTRY_BYTES * self.addr_scale) % self.uvm.len_bytes();
        let uvm_cycles = match self.uvm.touch(off) {
            Touch::Hit => 0,
            Touch::Fault { cycles } => cycles,
        };
        let slot = self.slot(word_idx);
        let tag = self.tag(word_idx);
        // An unmaterialized slot reads as (0, 0) at a stale epoch — the
        // same first-access result a zeroed preallocated slot produces.
        let (a, w, ep) = if slot < self.acc.len() {
            (self.acc[slot], self.wr[slot], self.epoch[slot])
        } else {
            (0, 0, self.cur_epoch.wrapping_add(1))
        };
        let mut entry = MetadataEntry::unpack(a, w);
        if ep != self.cur_epoch || entry.tag != tag {
            entry = MetadataEntry {
                tag,
                ..MetadataEntry::default()
            };
        }
        MetaLoad { entry, uvm_cycles }
    }

    /// Stores the entry for `word_idx` (stamps tag and epoch).
    pub fn store(&mut self, word_idx: u32, mut entry: MetadataEntry) {
        let slot = self.slot(word_idx);
        self.ensure(slot);
        entry.tag = self.tag(word_idx);
        let (a, w) = entry.pack();
        self.acc[slot] = a;
        self.wr[slot] = w;
        self.epoch[slot] = self.cur_epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfield::{AccessorInfo, Flags};

    fn table(words: usize) -> MetadataTable {
        MetadataTable::new(words, UvmConfig::default(), 1 << 30, 1 << 30, 1)
    }

    fn valid_entry(warp: u32) -> MetadataEntry {
        MetadataEntry {
            tag: 0,
            flags: Flags {
                valid: true,
                ..Flags::default()
            },
            accessor: AccessorInfo {
                warp_id: warp,
                ..AccessorInfo::default()
            },
            writer: AccessorInfo::default(),
            locks: 0,
        }
    }

    #[test]
    fn fresh_table_yields_invalid_entries() {
        let mut t = table(64);
        assert!(!t.load(7).entry.flags.valid);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        let l = t.load(7);
        assert!(l.entry.flags.valid);
        assert_eq!(l.entry.accessor.warp_id, 42);
    }

    #[test]
    fn epoch_invalidates_all_entries() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        t.begin_epoch();
        assert!(
            !t.load(7).entry.flags.valid,
            "new kernel must see fresh metadata"
        );
    }

    #[test]
    fn tag_mismatch_reinitializes_slot() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        // word 71 maps to the same slot (71 % 64 == 7) with a different tag.
        let l = t.load(71);
        assert!(
            !l.entry.flags.valid,
            "aliased slot must present as first access"
        );
        assert_eq!(l.entry.tag, 1);
    }

    #[test]
    fn first_touch_pays_uvm_fault_then_hits() {
        let mut t = table(64);
        let first = t.load(7);
        assert!(first.uvm_cycles > 0, "first touch must fault");
        let second = t.load(7);
        assert_eq!(second.uvm_cycles, 0, "page now resident");
    }

    #[test]
    fn prefault_eliminates_faults() {
        let mut t = table(64);
        let setup = t.prefault(u64::MAX);
        assert!(setup > 0);
        assert_eq!(t.load(7).uvm_cycles, 0);
        assert_eq!(t.uvm_stats().faults, 0);
    }

    #[test]
    fn addr_scale_spreads_touches_over_more_pages() {
        let cfg = UvmConfig {
            page_bytes: 4096,
            ..UvmConfig::default()
        };
        let mut near = MetadataTable::new(64, cfg.clone(), 1 << 30, 1 << 30, 1);
        let mut far = MetadataTable::new(64, cfg, 1 << 30, 1 << 30, 1024);
        for w in 0..64u32 {
            let _ = near.load(w);
            let _ = far.load(w);
        }
        assert!(
            far.uvm_stats().faults > near.uvm_stats().faults,
            "scaled addressing must touch more pages ({} vs {})",
            far.uvm_stats().faults,
            near.uvm_stats().faults
        );
    }
}
