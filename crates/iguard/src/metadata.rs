//! The memory-metadata table: one 16-byte entry per 4-byte word of global
//! memory (4× overhead, §6.1), stored packed exactly as Figure 4 and backed
//! by a simulated UVM managed region so no device memory is pinned.
//!
//! Entries are direct-mapped by word index with an address tag; a tag
//! mismatch means the slot is being reused for a different address and the
//! entry re-initializes (equivalent to a first access). A per-slot *epoch*
//! invalidates all entries between kernel launches — the implicit
//! device-wide barrier at grid completion orders everything across kernels,
//! so carrying metadata over would only manufacture false positives.
//! (The paper's detector reinitializes metadata at tool setup; the epoch is
//! the zero-cost equivalent for a long-lived table.)

use crate::bitfield::MetadataEntry;
use crate::error::IguardError;
use faults::{FaultConfig, FaultInjector, FaultSite, FaultStats};
use uvm_sim::{ManagedRegion, Touch, UvmConfig};

/// Bytes of metadata per 4-byte word (Figure 4).
pub const ENTRY_BYTES: u64 = 16;

/// Construction parameters of a [`MetadataTable`].
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// 4-byte words of global memory the table shadows.
    pub words: usize,
    /// UVM driver cost model for the managed metadata region.
    pub uvm: UvmConfig,
    /// Managed region size (the paper allocates ~4× of GPU capacity).
    pub virtual_bytes: u64,
    /// Device bytes available to back metadata residency.
    pub device_budget_bytes: u64,
    /// Logical address multiplier for footprint-scaling experiments.
    pub addr_scale: u64,
    /// Entry-capacity override. `None` sizes the table to cover every
    /// word injectively (no aliasing — today's behaviour); `Some(n)` caps
    /// it at `n` entries, so distinct words contend for slots and live
    /// metadata is evicted under pressure — the bounded-eviction overflow
    /// mode measured by `bench --bin pressure`.
    pub capacity_words: Option<usize>,
    /// Fault plane for the table and its backing UVM region.
    pub faults: FaultConfig,
}

impl TableConfig {
    /// The zero-fault, full-capacity configuration (today's behaviour).
    #[must_use]
    pub fn covering(words: usize) -> Self {
        TableConfig {
            words,
            uvm: UvmConfig::default(),
            virtual_bytes: 1 << 30,
            device_budget_bytes: 1 << 30,
            addr_scale: 1,
            capacity_words: None,
            faults: FaultConfig::disabled(),
        }
    }
}

/// Degradation counters of the metadata table. The detector mirrors their
/// sum into `IguardStats::missed_checks`, so every lost check is visible
/// in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// Live entries evicted by genuine capacity pressure (a smaller-than-
    /// memory table reusing a slot for a different address).
    pub capacity_evictions: u64,
    /// Entries forgotten because the fault plane evicted them.
    pub injected_evictions: u64,
    /// Entries forgotten because the fault plane aliased their tag.
    pub injected_aliases: u64,
}

impl MetaStats {
    /// Total loads that lost their previous-accessor information.
    #[must_use]
    pub fn total_evictions(&self) -> u64 {
        self.capacity_evictions + self.injected_evictions + self.injected_aliases
    }
}

/// The UVM-backed metadata table.
#[derive(Debug)]
pub struct MetadataTable {
    acc: Vec<u64>,
    wr: Vec<u64>,
    epoch: Vec<u32>,
    cur_epoch: u32,
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// per-access direct mapping is a mask, not a division.
    slot_mask: usize,
    /// `log2(capacity)`; the tag is a shift, not a division.
    tag_shift: u32,
    uvm: ManagedRegion,
    /// Multiplier mapping backing word indices to *logical* metadata
    /// offsets, so footprint-scaling experiments (Figure 14) exercise the
    /// paging behaviour of multi-GB metadata with small backing arrays.
    addr_scale: u64,
    /// Whether distinct in-bounds words can contend for one slot (only
    /// with a `capacity_words` override below `words`).
    can_alias: bool,
    faults: FaultInjector,
    meta_stats: MetaStats,
}

/// Result of a metadata load.
#[derive(Debug, Clone, Copy)]
pub struct MetaLoad {
    /// Decoded entry; `entry.flags.valid == false` means first access
    /// (slot empty, reused for a new tag, or stale epoch).
    pub entry: MetadataEntry,
    /// UVM cycles incurred touching the entry's page (0 when resident).
    pub uvm_cycles: u64,
    /// Previous-accessor information was lost for this load (capacity
    /// eviction or injected fault): the race check against the forgotten
    /// accessor cannot run, and the detector counts a missed check.
    pub evicted: bool,
}

impl MetadataTable {
    /// Creates a table shadowing `cfg.words` 4-byte words of global
    /// memory, with optional capacity pressure and fault injection.
    pub fn new(cfg: TableConfig) -> Result<Self, IguardError> {
        if cfg.words == 0 {
            return Err(IguardError::EmptyTable);
        }
        // Power-of-two capacity: slot/tag become mask/shift. Without an
        // override the capacity covers every in-bounds word index
        // injectively, so the mapping is identical to the modulo/divide
        // scheme and behaviour is unchanged in practice. A smaller
        // override makes distinct words contend for slots — bounded
        // eviction under pressure.
        let capacity = cfg
            .capacity_words
            .unwrap_or(cfg.words)
            .max(1)
            .next_power_of_two();
        let mut uvm = ManagedRegion::new(
            cfg.uvm,
            cfg.virtual_bytes.max(ENTRY_BYTES),
            cfg.device_budget_bytes,
        )?;
        uvm.set_faults(FaultInjector::new(&cfg.faults, "metadata-uvm"));
        // Slot storage grows lazily to the touched high-water mark (the
        // mapping is identity for in-bounds words, so this is equivalent
        // to full preallocation); only the mask/shift use `capacity`.
        Ok(MetadataTable {
            acc: Vec::new(),
            wr: Vec::new(),
            epoch: Vec::new(),
            cur_epoch: 0,
            slot_mask: capacity - 1,
            tag_shift: capacity.trailing_zeros(),
            uvm,
            addr_scale: cfg.addr_scale.max(1),
            can_alias: capacity < cfg.words.next_power_of_two(),
            faults: FaultInjector::new(&cfg.faults, "metadata"),
            meta_stats: MetaStats::default(),
        })
    }

    /// Degradation counters (evictions, injected forgetfulness).
    #[must_use]
    pub fn meta_stats(&self) -> MetaStats {
        self.meta_stats
    }

    /// Injected-fault counters for the table itself plus its UVM region.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.faults.stats();
        s.accumulate(&self.uvm.fault_stats());
        s
    }

    /// Number of entries (the power-of-two capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot_mask + 1
    }

    /// Whether the table is empty (never true; see `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grows the slot arrays to cover `slot`. Fresh slots read as
    /// epoch-stale (see `load`), exactly what a zeroed preallocation
    /// yields for a never-written entry.
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.acc.len() {
            let n = (slot + 1).next_power_of_two().min(self.slot_mask + 1);
            self.acc.resize(n, 0);
            self.wr.resize(n, 0);
            self.epoch.resize(n, 0);
        }
    }

    /// Invalidates every entry (new kernel launch).
    pub fn begin_epoch(&mut self) {
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
    }

    /// Prefaults up to `max_bytes` of the managed metadata region
    /// (`cudaMemset` warm-up); returns setup cycles to charge.
    pub fn prefault(&mut self, max_bytes: u64) -> u64 {
        self.uvm.prefault(max_bytes)
    }

    /// UVM statistics (faults, evictions, prefaulted pages).
    #[must_use]
    pub fn uvm_stats(&self) -> uvm_sim::UvmStats {
        self.uvm.stats()
    }

    fn slot(&self, word_idx: u32) -> usize {
        word_idx as usize & self.slot_mask
    }

    fn tag(&self, word_idx: u32) -> u16 {
        ((word_idx as usize >> self.tag_shift) & 0x3FF) as u16
    }

    /// Loads the entry for `word_idx`, touching its UVM page.
    #[must_use]
    pub fn load(&mut self, word_idx: u32) -> MetaLoad {
        let off = (u64::from(word_idx) * ENTRY_BYTES * self.addr_scale) % self.uvm.len_bytes();
        let uvm_cycles = match self.uvm.touch(off) {
            Touch::Hit => 0,
            Touch::Fault { cycles } => cycles,
        };
        let slot = self.slot(word_idx);
        let tag = self.tag(word_idx);
        // An unmaterialized slot reads as (0, 0) at a stale epoch — the
        // same first-access result a zeroed preallocated slot produces.
        let (a, w, ep) = if slot < self.acc.len() {
            (self.acc[slot], self.wr[slot], self.epoch[slot])
        } else {
            (0, 0, self.cur_epoch.wrapping_add(1))
        };
        let mut entry = MetadataEntry::unpack(a, w);
        // A live, valid entry with a different tag is a *capacity
        // eviction*: the slot is being reused for another address and its
        // previous-accessor information is lost. Only possible when a
        // capacity override lets in-bounds words alias.
        let mut evicted =
            self.can_alias && ep == self.cur_epoch && entry.flags.valid && entry.tag != tag;
        if evicted {
            self.meta_stats.capacity_evictions += 1;
        } else if self.faults.enabled() {
            // Injected forgetfulness, consulted only when the load would
            // otherwise proceed normally so each fired fault maps to
            // exactly one MetaStats counter.
            if self.faults.fire(FaultSite::MetaEviction) {
                self.meta_stats.injected_evictions += 1;
                evicted = true;
            } else if self.faults.fire(FaultSite::MetaTagAlias) {
                self.meta_stats.injected_aliases += 1;
                evicted = true;
            }
        }
        if ep != self.cur_epoch || entry.tag != tag || evicted {
            entry = MetadataEntry {
                tag,
                ..MetadataEntry::default()
            };
        }
        MetaLoad {
            entry,
            uvm_cycles,
            evicted,
        }
    }

    /// Stores the entry for `word_idx` (stamps tag and epoch).
    pub fn store(&mut self, word_idx: u32, mut entry: MetadataEntry) {
        let slot = self.slot(word_idx);
        self.ensure(slot);
        entry.tag = self.tag(word_idx);
        let (a, w) = entry.pack();
        self.acc[slot] = a;
        self.wr[slot] = w;
        self.epoch[slot] = self.cur_epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfield::{AccessorInfo, Flags};

    fn table(words: usize) -> MetadataTable {
        MetadataTable::new(TableConfig::covering(words)).unwrap()
    }

    fn valid_entry(warp: u32) -> MetadataEntry {
        MetadataEntry {
            tag: 0,
            flags: Flags {
                valid: true,
                ..Flags::default()
            },
            accessor: AccessorInfo {
                warp_id: warp,
                ..AccessorInfo::default()
            },
            writer: AccessorInfo::default(),
            locks: 0,
        }
    }

    #[test]
    fn fresh_table_yields_invalid_entries() {
        let mut t = table(64);
        assert!(!t.load(7).entry.flags.valid);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        let l = t.load(7);
        assert!(l.entry.flags.valid);
        assert_eq!(l.entry.accessor.warp_id, 42);
    }

    #[test]
    fn epoch_invalidates_all_entries() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        t.begin_epoch();
        assert!(
            !t.load(7).entry.flags.valid,
            "new kernel must see fresh metadata"
        );
    }

    #[test]
    fn tag_mismatch_reinitializes_slot() {
        let mut t = table(64);
        t.store(7, valid_entry(42));
        // word 71 maps to the same slot (71 % 64 == 7) with a different tag.
        let l = t.load(71);
        assert!(
            !l.entry.flags.valid,
            "aliased slot must present as first access"
        );
        assert_eq!(l.entry.tag, 1);
    }

    #[test]
    fn first_touch_pays_uvm_fault_then_hits() {
        let mut t = table(64);
        let first = t.load(7);
        assert!(first.uvm_cycles > 0, "first touch must fault");
        let second = t.load(7);
        assert_eq!(second.uvm_cycles, 0, "page now resident");
    }

    #[test]
    fn prefault_eliminates_faults() {
        let mut t = table(64);
        let setup = t.prefault(u64::MAX);
        assert!(setup > 0);
        assert_eq!(t.load(7).uvm_cycles, 0);
        assert_eq!(t.uvm_stats().faults, 0);
    }

    #[test]
    fn addr_scale_spreads_touches_over_more_pages() {
        let cfg = UvmConfig {
            page_bytes: 4096,
            ..UvmConfig::default()
        };
        let mut near = MetadataTable::new(TableConfig {
            uvm: cfg.clone(),
            ..TableConfig::covering(64)
        })
        .unwrap();
        let mut far = MetadataTable::new(TableConfig {
            uvm: cfg,
            addr_scale: 1024,
            ..TableConfig::covering(64)
        })
        .unwrap();
        for w in 0..64u32 {
            let _ = near.load(w);
            let _ = far.load(w);
        }
        assert!(
            far.uvm_stats().faults > near.uvm_stats().faults,
            "scaled addressing must touch more pages ({} vs {})",
            far.uvm_stats().faults,
            near.uvm_stats().faults
        );
    }

    #[test]
    fn empty_table_is_a_typed_error() {
        assert_eq!(
            MetadataTable::new(TableConfig::covering(0)).unwrap_err(),
            IguardError::EmptyTable
        );
    }

    #[test]
    fn full_capacity_never_counts_capacity_evictions() {
        let mut t = table(64);
        for w in 0..64u32 {
            t.store(w, valid_entry(w));
        }
        for w in 0..64u32 {
            assert!(!t.load(w).evicted);
        }
        assert_eq!(t.meta_stats(), MetaStats::default());
    }

    #[test]
    fn capacity_override_evicts_live_entries() {
        let mut t = MetadataTable::new(TableConfig {
            capacity_words: Some(8),
            ..TableConfig::covering(64)
        })
        .unwrap();
        assert_eq!(t.len(), 8);
        t.store(3, valid_entry(1));
        // Word 11 maps to slot 3 under the 8-entry table: loading it
        // evicts word 3's live entry.
        let l = t.load(11);
        assert!(l.evicted);
        assert!(!l.entry.flags.valid, "evicted slot presents as first access");
        assert_eq!(t.meta_stats().capacity_evictions, 1);
        // A re-load of the same word without an intervening store does not
        // evict again (the slot no longer holds live info for it).
        t.store(11, valid_entry(2));
        assert!(!t.load(11).evicted);
    }

    #[test]
    fn injected_eviction_forgets_live_entries_and_is_counted() {
        use faults::{FaultConfig, RATE_ONE};
        let mut t = MetadataTable::new(TableConfig {
            faults: FaultConfig::disabled()
                .with_seed(7)
                .with_rate(FaultSite::MetaEviction, RATE_ONE),
            ..TableConfig::covering(64)
        })
        .unwrap();
        t.store(5, valid_entry(9));
        let l = t.load(5);
        assert!(l.evicted);
        assert!(!l.entry.flags.valid);
        let ms = t.meta_stats();
        assert_eq!(ms.injected_evictions, 1);
        assert_eq!(ms.capacity_evictions, 0);
        assert_eq!(t.fault_stats().get(FaultSite::MetaEviction), 1);
        // Every fired fault maps to exactly one MetaStats counter.
        assert_eq!(t.fault_stats().total(), ms.total_evictions());
    }

    #[test]
    fn disabled_faults_draw_nothing() {
        let mut a = table(64);
        let mut b = table(64);
        for w in 0..64u32 {
            a.store(w, valid_entry(w));
            b.store(w, valid_entry(w));
            assert_eq!(a.load(w).entry.pack(), b.load(w).entry.pack());
        }
        assert_eq!(a.fault_stats().total(), 0);
    }
}
