//! Scratchpad (shared-memory) race detection — the *extension* class.
//!
//! The paper deliberately scopes iGUARD to global memory: scratchpad races
//! are the domain of earlier tools (NVIDIA's Racecheck, GRace, GMRace —
//! §4). This module closes that gap with iGUARD's own machinery, as the
//! natural "complete tool" extension: per-(block, word) shadow state with
//! the same last-accessor identity + barrier/warp-barrier counters, and
//! the same ITS awareness no scratchpad tool of the paper's era had.
//!
//! Shared memory is private to a block, so the check set collapses to the
//! intra-block subset of Table 2: program order (P3), warp-synced access
//! (P4), barrier-separated access (P5), and the ITS (R2) / intra-block
//! (R3, without fences — scratchpad code synchronizes with barriers) race
//! classes.

use std::collections::HashMap;

use gpu_sim::hook::{AccessKind, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::{Instr, Space};
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::Tool;

use crate::checks::RaceKind;

/// One reported scratchpad race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedRace {
    /// Kernel name (interned).
    pub kernel: std::sync::Arc<str>,
    /// pc of the second access.
    pub pc: usize,
    /// Byte offset within the block's scratchpad.
    pub offset: u32,
    /// Block in which the race occurred.
    pub block: u32,
    /// ITS (same warp) or intra-block (cross warp).
    pub kind: RaceKind,
    /// Source annotation, when available.
    pub line: Option<String>,
}

#[derive(Debug, Clone, Copy)]
struct Shadow {
    tid: u32,
    warp: u32,
    /// Block-barrier count at access time.
    bar: u32,
    /// Warp-barrier count (of the accessor's warp) at access time.
    warp_bar: u32,
    modified: bool,
}

/// The Racecheck-class scratchpad detector, built as an `nvbit-sim` tool.
#[derive(Debug, Default)]
pub struct ScratchpadGuard {
    /// (block, shared word) → last accessor / last writer.
    last_access: HashMap<(u32, u32), Shadow>,
    last_write: HashMap<(u32, u32), Shadow>,
    /// Barrier epochs per block; warp-barrier epochs per global warp.
    bar: HashMap<u32, u32>,
    warp_bar: HashMap<u32, u32>,
    races: Vec<SharedRace>,
    seen: std::collections::HashSet<(usize, bool)>,
    /// Dynamic shared accesses observed.
    pub accesses: u64,
}

impl ScratchpadGuard {
    /// A fresh detector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Races found so far.
    #[must_use]
    pub fn races(&self) -> &[SharedRace] {
        &self.races
    }

    fn check(&mut self, access: &MemAccess<'_>, offset: u32, tid: u32, lane: u32, is_write: bool) {
        let block = access.block_id;
        let key = (block, offset / 4);
        let bar = *self.bar.get(&block).unwrap_or(&0);
        let wbar = *self.warp_bar.get(&access.global_warp).unwrap_or(&0);

        // For writes, conflict with the last accessor; for reads, with the
        // last writer (same md selection as the global detector).
        let md = if is_write {
            self.last_access.get(&key)
        } else {
            self.last_write.get(&key)
        };
        if let Some(prev) = md.copied() {
            let conflicting = is_write || prev.modified;
            let same_thread = prev.tid == tid;
            let barrier_between = prev.bar != bar;
            let same_warp = prev.warp == access.global_warp;
            let warp_sync_between = same_warp && prev.warp_bar != wbar;
            let converged = same_warp && access.active_mask & (1 << (prev.tid % 32)) != 0;
            if conflicting && !same_thread && !barrier_between && !warp_sync_between && !converged {
                let kind = if same_warp {
                    RaceKind::IntraWarp
                } else {
                    RaceKind::IntraBlock
                };
                if self.seen.insert((access.pc, is_write)) {
                    self.races.push(SharedRace {
                        kernel: access.kernel.name.clone(),
                        pc: access.pc,
                        offset,
                        block,
                        kind,
                        line: access.kernel.line(access.pc).map(str::to_owned),
                    });
                }
            }
        }

        let shadow = Shadow {
            tid,
            warp: access.global_warp,
            bar,
            warp_bar: wbar,
            modified: is_write,
        };
        self.last_access.insert(key, shadow);
        if is_write {
            self.last_write.insert(key, shadow);
        }
        let _ = lane;
    }
}

impl Tool for ScratchpadGuard {
    fn wants(&self, instr: &Instr) -> bool {
        // Instrument shared-memory accesses and synchronization only.
        match instr {
            Instr::Ld { space, .. } | Instr::St { space, .. } => *space == Space::Shared,
            _ => instr.is_sync(),
        }
    }

    fn at_launch(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {
        self.last_access.clear();
        self.last_write.clear();
        self.bar.clear();
        self.warp_bar.clear();
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        if access.space != Space::Shared {
            return;
        }
        clock.charge(CostCategory::Detection, 16);
        self.accesses += access.lanes.len() as u64;
        let is_write = !matches!(access.kind, AccessKind::Load);
        let lanes: Vec<(u32, u32, u32)> = access
            .lanes
            .iter()
            .map(|l| (l.tid_in_block, l.lane, l.addr))
            .collect();
        for (tid, lane, addr) in lanes {
            self.check(access, addr, tid, lane, is_write);
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, _clock: &mut Clock) {
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                *self.bar.entry(*block_id).or_insert(0) += 1;
            }
            SyncEvent::WarpBarrier { global_warp, .. } => {
                *self.warp_bar.entry(*global_warp).or_insert(0) += 1;
            }
            SyncEvent::Fence { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;
    use nvbit_sim::Instrumented;

    /// Shared-memory handoff across warps; `sync` controls the barrier.
    fn shared_handoff(sync: bool) -> Kernel {
        let mut b = KernelBuilder::new(if sync { "sh_ok" } else { "sh_racy" });
        b.shared(8);
        let tid = b.special(Special::Tid);
        // Thread 40 (warp 1) writes sdata[1].
        let is40 = b.eq(tid, 40u32);
        let after = b.fwd_label();
        b.bra_ifnot(is40, after);
        let v = b.imm(9);
        let four = b.imm(4);
        b.st_shared(four, 0, v);
        b.bind(after);
        if sync {
            b.syncthreads();
        }
        // Thread 0 (warp 0) reads sdata[1].
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let four = b.imm(4);
        let _ = b.ld_shared(four, 0);
        b.bind(fin);
        b.build()
    }

    fn run(k: &Kernel, grid: u32, block: u32) -> Instrumented<ScratchpadGuard> {
        let mut gpu = Gpu::new(GpuConfig {
            seed: 5,
            ..GpuConfig::default()
        });
        let mut tool = Instrumented::new(ScratchpadGuard::new());
        gpu.launch(k, grid, block, &[], &mut tool).unwrap();
        tool
    }

    #[test]
    fn missing_syncthreads_on_scratchpad_is_detected() {
        let t = run(&shared_handoff(false), 1, 64);
        let races = t.tool().races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind, RaceKind::IntraBlock);
    }

    #[test]
    fn barriered_scratchpad_handoff_is_clean() {
        let t = run(&shared_handoff(true), 1, 64);
        assert!(t.tool().races().is_empty());
    }

    #[test]
    fn scratchpad_its_race_detected_with_warp_granularity() {
        // The Figure 2/8 pattern on *shared* memory: lanes 1 and 0 of one
        // warp, no __syncwarp. The tools of the paper's era could not see
        // this (no ITS support); this extension does.
        fn kernel(syncwarp: bool) -> Kernel {
            let mut b = KernelBuilder::new(if syncwarp {
                "sh_warp_ok"
            } else {
                "sh_warp_racy"
            });
            b.shared(8);
            let tid = b.special(Special::Tid);
            let is1 = b.eq(tid, 1u32);
            let after = b.fwd_label();
            b.bra_ifnot(is1, after);
            let v = b.imm(3);
            let four = b.imm(4);
            b.st_shared(four, 0, v);
            b.bind(after);
            if syncwarp {
                b.syncwarp();
            }
            let is0 = b.eq(tid, 0u32);
            let fin = b.fwd_label();
            b.bra_ifnot(is0, fin);
            let four = b.imm(4);
            let _ = b.ld_shared(four, 0);
            b.bind(fin);
            b.build()
        }
        let t = run(&kernel(false), 1, 32);
        let races = t.tool().races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind, RaceKind::IntraWarp);

        let t = run(&kernel(true), 1, 32);
        assert!(t.tool().races().is_empty(), "__syncwarp orders the handoff");
    }

    #[test]
    fn per_block_scratchpads_do_not_alias() {
        // Every block's thread 0 writes its own sdata[0]: same offset,
        // different scratchpads — never a race.
        let mut b = KernelBuilder::new("sh_per_block");
        b.shared(4);
        let tid = b.special(Special::Tid);
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let zero = b.imm(0);
        b.st_shared(zero, 0, tid);
        b.bind(fin);
        let k = b.build();
        let t = run(&k, 4, 32);
        assert!(t.tool().races().is_empty());
    }

    #[test]
    fn the_global_detector_stays_scoped_to_global_memory() {
        // iGUARD proper must NOT report the scratchpad race — the paper's
        // explicit scoping (§4).
        let k = shared_handoff(false);
        let mut gpu = Gpu::new(GpuConfig {
            seed: 5,
            ..GpuConfig::default()
        });
        let mut tool = Instrumented::new(crate::Iguard::default());
        gpu.launch(&k, 1, 64, &[], &mut tool).unwrap();
        assert_eq!(tool.tool().unique_races(), 0);
    }

    #[test]
    fn correct_tree_reduction_on_scratchpad_is_clean() {
        let mut b = KernelBuilder::new("sh_reduce");
        b.shared(64);
        let tid = b.special(Special::Tid);
        let soff = b.mul(tid, 4u32);
        b.st_shared(soff, 0, tid);
        b.syncthreads();
        let stride = b.imm(32);
        let top = b.here();
        let done = b.eq(stride, 0u32);
        let exit_l = b.fwd_label();
        b.bra_if(done, exit_l);
        let active = b.lt(tid, stride);
        let skip = b.fwd_label();
        b.bra_ifnot(active, skip);
        let mine = b.ld_shared(soff, 0);
        let oidx = b.add(tid, stride);
        let ooff = b.mul(oidx, 4u32);
        let theirs = b.ld_shared(ooff, 0);
        let sum = b.add(mine, theirs);
        b.st_shared(soff, 0, sum);
        b.bind(skip);
        b.syncthreads();
        let half = b.shr(stride, 1u32);
        b.mov(stride, half);
        b.bra(top);
        b.bind(exit_l);
        let k = b.build();
        let t = run(&k, 2, 64);
        assert!(t.tool().races().is_empty(), "{:?}", t.tool().races());
    }
}
