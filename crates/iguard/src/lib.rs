//! # iguard: the paper's core contribution
//!
//! A Rust reproduction of **iGUARD: In-GPU Advanced Race Detection**
//! (Kamath & Basu, SOSP 2021) over the `gpu-sim` substrate. The detector is
//! an `nvbit-sim` instrumentation tool that detects global-memory races
//! caused by the advanced programming features of modern GPUs:
//!
//! - **scoped synchronization** — under-scoped atomics and fences (AS/BR/DR
//!   races),
//! - **Independent Thread Scheduling** — missing `__syncwarp` (ITS races),
//! - **Cooperative Groups** — wrong-granularity group sync (detected
//!   automatically through the constituent fences/atomics/barriers, §6.4),
//! - **inferred locks** — guidebook `atomicCAS`+fence / fence+`atomicExch`
//!   idioms with per-warp *or* per-thread protocols, checked by lockset
//!   (IL races).
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::prelude::*;
//! use nvbit_sim::Instrumented;
//! use iguard::Iguard;
//!
//! // A racy kernel: lane 1 stores, lane 0 loads with no __syncwarp.
//! let mut b = KernelBuilder::new("racy");
//! let tid = b.special(Special::Tid);
//! let base = b.param(0);
//! let is1 = b.eq(tid, 1u32);
//! let skip = b.fwd_label();
//! b.bra_ifnot(is1, skip);
//! let v = b.imm(7);
//! b.st(base, 1, v);
//! b.bind(skip);
//! let is0 = b.eq(tid, 0u32);
//! let done = b.fwd_label();
//! b.bra_ifnot(is0, done);
//! let got = b.ld(base, 1);
//! b.st(base, 0, got);
//! b.bind(done);
//! let kernel = b.build();
//!
//! let mut gpu = Gpu::new(GpuConfig::default());
//! let buf = gpu.alloc(4).unwrap();
//! let mut tool = Instrumented::new(Iguard::default());
//! gpu.launch(&kernel, 1, 32, &[buf], &mut tool).unwrap();
//! let races = tool.tool_mut().races();
//! assert!(races.iter().any(|r| r.kind == iguard::RaceKind::IntraWarp));
//! ```

#![forbid(unsafe_code)]

pub mod bitfield;
pub mod checks;
pub mod config;
pub mod detector;
pub(crate) mod engine;
pub mod error;
pub mod locks;
pub mod metadata;
pub mod report;
pub mod scratchpad;
pub mod shard;
pub mod syncmeta;

pub use checks::{AccessType, RaceKind};
pub use config::IguardConfig;
pub use detector::{Degradation, Iguard, IguardStats};
pub use error::IguardError;
pub use report::{RaceRecord, RaceSite};
pub use scratchpad::{ScratchpadGuard, SharedRace};
pub use shard::{ShardConfig, ShardedIguard};
