//! Race reporting (§5 "Race reporting").
//!
//! Detected races accumulate in a device-side buffer (1 MB in the paper)
//! that is shipped to the CPU when full or at program end — execution is
//! never stopped. Reports are deduplicated per (kernel, pc, race-kind)
//! before shipping so a racing instruction inside a hot loop does not flood
//! the channel; every dynamic occurrence is still counted.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use faults::{FaultConfig, FaultInjector, FaultStats};
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::channel::{ChannelError, ChannelStats, HostChannel};

use crate::checks::{AccessType, RaceKind};

/// One reported race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceRecord {
    /// Kernel in which the racing access executed (interned name).
    pub kernel: Arc<str>,
    /// Program counter of the racing access.
    pub pc: usize,
    /// Source annotation, when the binary carries debug info.
    pub line: Option<String>,
    /// Byte address of the 4-byte word raced on.
    pub addr: u32,
    /// Race classification (Table 2 / Table 4 codes).
    pub kind: RaceKind,
    /// The current (second) access's type.
    pub access: AccessType,
    /// Current accessor identity.
    pub warp: u32,
    /// Current accessor lane.
    pub lane: u32,
    /// Current accessor block.
    pub block: u32,
    /// Previous conflicting accessor's warp (from metadata).
    pub prev_warp: u32,
    /// Previous conflicting accessor's lane.
    pub prev_lane: u32,
}

impl std::fmt::Display for RaceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} race at pc {} on 0x{:x}: warp {} lane {} (block {}) vs warp {} lane {}",
            self.kernel,
            self.kind.code(),
            self.pc,
            self.addr,
            self.warp,
            self.lane,
            self.block,
            self.prev_warp,
            self.prev_lane,
        )?;
        if let Some(line) = &self.line {
            write!(f, "  // {line}")?;
        }
        Ok(())
    }
}

/// A distinct racing program location, the unit Table 4 counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    /// Kernel name (interned).
    pub kernel: Arc<str>,
    /// Racing pc.
    pub pc: usize,
    /// All race kinds observed at this site.
    pub kinds: Vec<RaceKind>,
    /// Source annotation if available.
    pub line: Option<String>,
}

/// Accumulates, deduplicates, and ships race reports.
#[derive(Debug)]
pub struct RaceReporter {
    channel: HostChannel<RaceRecord>,
    shipped_keys: HashSet<(Arc<str>, usize, RaceKind)>,
    /// Total dynamic race occurrences (including deduplicated ones).
    pub dynamic_races: u64,
}

impl RaceReporter {
    /// A reporter whose buffer holds `capacity` records before flushing
    /// (the paper's 1 MB buffer ≈ 16 K records).
    pub fn new(capacity: usize) -> Result<Self, ChannelError> {
        RaceReporter::with_faults(capacity, &FaultConfig::disabled())
    }

    /// Like [`RaceReporter::new`], with the fault plane attached to the
    /// report channel (drop / corruption / overflow injection).
    pub fn with_faults(capacity: usize, faults: &FaultConfig) -> Result<Self, ChannelError> {
        // Shipping a race record is rare; costs are tiny and charged to
        // Misc as "report draining".
        let mut channel = HostChannel::new(capacity, 30, 2_000, CostCategory::Misc)?;
        channel.set_faults(FaultInjector::new(faults, "report-channel"));
        Ok(RaceReporter {
            channel,
            shipped_keys: HashSet::new(),
            dynamic_races: 0,
        })
    }

    /// Channel counters (sent / drained / dropped accounting).
    #[must_use]
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel.stats()
    }

    /// Injected-fault counters for the report channel.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.channel.fault_stats()
    }

    /// Records one detected race.
    pub fn report(&mut self, record: RaceRecord, clock: &mut Clock) {
        self.dynamic_races += 1;
        let key = (record.kernel.clone(), record.pc, record.kind);
        if self.shipped_keys.insert(key) {
            self.channel.send(record, clock);
        }
    }

    /// Drains everything shipped so far (program end / timeout).
    pub fn drain(&mut self) -> Vec<RaceRecord> {
        self.channel.drain()
    }

    /// Unique races shipped so far, without draining.
    #[must_use]
    pub fn unique_races(&self) -> usize {
        self.shipped_keys.len()
    }
}

/// Groups drained records into distinct sites (kernel, pc), the unit the
/// paper's Table 4 counts races in.
#[must_use]
pub fn group_sites(records: &[RaceRecord]) -> Vec<RaceSite> {
    let mut sites: BTreeMap<(Arc<str>, usize), RaceSite> = BTreeMap::new();
    for r in records {
        let site = sites
            .entry((r.kernel.clone(), r.pc))
            .or_insert_with(|| RaceSite {
                kernel: r.kernel.clone(),
                pc: r.pc,
                kinds: Vec::new(),
                line: r.line.clone(),
            });
        if !site.kinds.contains(&r.kind) {
            site.kinds.push(r.kind);
        }
    }
    sites.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pc: usize, kind: RaceKind) -> RaceRecord {
        RaceRecord {
            kernel: "k".into(),
            pc,
            line: None,
            addr: 0x40,
            kind,
            access: AccessType::Store,
            warp: 1,
            lane: 2,
            block: 0,
            prev_warp: 0,
            prev_lane: 3,
        }
    }

    #[test]
    fn duplicate_races_ship_once_but_count() {
        let mut clk = Clock::new();
        let mut r = RaceReporter::new(100).unwrap();
        for _ in 0..50 {
            r.report(record(5, RaceKind::IntraBlock), &mut clk);
        }
        assert_eq!(r.dynamic_races, 50);
        assert_eq!(r.unique_races(), 1);
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn distinct_pcs_and_kinds_all_ship() {
        let mut clk = Clock::new();
        let mut r = RaceReporter::new(100).unwrap();
        r.report(record(5, RaceKind::IntraBlock), &mut clk);
        r.report(record(5, RaceKind::Locking), &mut clk);
        r.report(record(9, RaceKind::IntraBlock), &mut clk);
        assert_eq!(r.unique_races(), 3);
    }

    #[test]
    fn sites_group_by_pc() {
        let records = vec![
            record(5, RaceKind::IntraBlock),
            record(5, RaceKind::Locking),
            record(9, RaceKind::InterBlock),
        ];
        let sites = group_sites(&records);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kinds.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let s = record(5, RaceKind::AtomicScope).to_string();
        assert!(s.contains("AS race"));
        assert!(s.contains("pc 5"));
    }
}
