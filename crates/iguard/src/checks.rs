//! The two-tier race checks of Table 2, as pure functions.
//!
//! Preliminary checks P1–P6 prove an access trivially race-free; only if
//! all fail are the detailed conditions R1–R5 evaluated **in order** — the
//! first satisfied condition classifies the race. If neither tier decides
//! (e.g. accesses correctly protected by common locks), no race is declared.
//!
//! Conventions carried over from the paper (§6.4):
//! - `md` is the last **accessor** for stores/atomics and the last
//!   **writer** for loads;
//! - shared flags (`DevShared`/`BlkShared`) are updated from the current
//!   access *before* the checks run (§6.2 describes the flag update as the
//!   first step of metadata processing);
//! - fence comparisons test whether **`md`'s thread** has fenced since its
//!   recorded access: its stored counters against its *live* counters —
//!   this is the release-side happens-before approximation inherited from
//!   ScoRD;
//! - barrier comparisons use the shared per-block / per-warp counters,
//!   which both threads of the pair observe identically.

use crate::bitfield::{AccessorInfo, MetadataEntry};

/// Classification of the current access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// Global load.
    Load,
    /// Global store.
    Store,
    /// Atomic (treated as a store, §6.2); `scope_block` = block scope.
    Atomic {
        /// True for `_block`-scoped atomics.
        scope_block: bool,
    },
}

impl AccessType {
    /// Whether the access writes (store or atomic).
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, AccessType::Load)
    }

    /// Whether the access is atomic.
    #[must_use]
    pub fn is_atomic(&self) -> bool {
        matches!(self, AccessType::Atomic { .. })
    }
}

/// The current access, with its thread's live synchronization snapshot.
#[derive(Debug, Clone, Copy)]
pub struct CurrAccess {
    /// Load / store / scoped atomic.
    pub kind: AccessType,
    /// Global warp id.
    pub warp_id: u32,
    /// Lane within the warp.
    pub lane: u32,
    /// Block id.
    pub block_id: u32,
    /// `__activemask()` of the split executing the access.
    pub active_mask: u32,
    /// The current thread's synchronization counters (its warp's barrier
    /// counter, its block's barrier counter, its own fence counters).
    pub snap: AccessorInfo,
    /// Bloom summary of locks the current thread holds (sm.Locks).
    pub locks: u16,
}

/// The `md` record: the stored accessor/writer info plus the *live* fence
/// counters of that same thread, read from the synchronization metadata at
/// check time.
#[derive(Debug, Clone, Copy)]
pub struct MdView {
    /// Stored identity + counters at the time of the previous access.
    pub info: AccessorInfo,
    /// That thread's fence counters *now*.
    pub live_dev_fence: u8,
    /// That thread's block-scope fence counter *now*.
    pub live_blk_fence: u8,
}

impl MdView {
    /// Has `md`'s thread executed a device-scope fence since its access?
    #[must_use]
    pub fn dev_fenced_since(&self) -> bool {
        self.info.dev_fence != self.live_dev_fence
    }

    /// Has `md`'s thread executed a block-scope fence since its access?
    #[must_use]
    pub fn blk_fenced_since(&self) -> bool {
        self.info.blk_fence != self.live_blk_fence
    }

    /// Has `md`'s thread executed *any* fence since its access?
    #[must_use]
    pub fn fenced_since(&self) -> bool {
        self.dev_fenced_since() || self.blk_fenced_since()
    }
}

/// Which preliminary condition proved the access race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Safe {
    /// P1: first access to the location.
    FirstAccess,
    /// P2: location never written and the access is a load.
    NoWrite,
    /// P3: same thread, program order.
    ProgramOrder,
    /// P4: same warp, separated by `__syncwarp` or still converged.
    WarpSynced,
    /// P5: same block, separated by `__syncthreads`.
    Barrier,
    /// P6: both atomic, with sufficient scope.
    SafeAtomic,
}

/// The race classes of Table 2 / Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKind {
    /// R1 → AS: insufficient atomic scope.
    AtomicScope,
    /// R2 → ITS: intra-warp race (missing `__syncwarp` under ITS).
    IntraWarp,
    /// R3 → BR: intra-block race (missing `__syncthreads`/fence).
    IntraBlock,
    /// R4 → DR: inter-block race (missing device-scope fence).
    InterBlock,
    /// R5 → IL: improper locking (empty lockset intersection).
    Locking,
}

impl RaceKind {
    /// The short code the paper's Table 4 uses.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RaceKind::AtomicScope => "AS",
            RaceKind::IntraWarp => "ITS",
            RaceKind::IntraBlock => "BR",
            RaceKind::InterBlock => "DR",
            RaceKind::Locking => "IL",
        }
    }
}

/// Figure 9's improper-locking signature: both sides hold locks, yet the
/// locksets share no member. Mutual exclusion was *intended* and did not
/// happen, so neither lockstep convergence (P4's in-mask clause) nor the
/// happens-before ordering of one particular schedule (R2–R4) makes the
/// pair safe — the next schedule interleaves the critical sections.
#[must_use]
fn disjointly_locked(entry: &MetadataEntry, curr: &CurrAccess) -> bool {
    entry.locks != 0 && curr.locks != 0 && entry.locks & curr.locks == 0
}

/// Runs P2–P6 (P1, the validity check, is handled by the caller before the
/// entry is materialized). Returns the first satisfied condition.
#[must_use]
pub fn preliminary(
    entry: &MetadataEntry,
    md: &MdView,
    curr: &CurrAccess,
    warps_per_block: u32,
) -> Option<Safe> {
    let flags = entry.flags;
    let md_block = md.info.block_id(warps_per_block);

    // P2: no write access — unmodified location, current access is a load.
    if !flags.modified && curr.kind == AccessType::Load {
        return Some(Safe::NoWrite);
    }

    // P3: program-order access — location only ever touched by one warp,
    // and the same thread touched it last.
    if !flags.dev_shared && !flags.blk_shared && curr.lane == md.info.lane {
        return Some(Safe::ProgramOrder);
    }

    // P4: warp-synced access — same warp, and either an intervening
    // __syncwarp (warp-barrier counters differ) or the previous accessor is
    // in the current active mask (converged: lockstep ordering applies).
    // Convergence does NOT excuse a disjointly-locked pair: two critical
    // sections under different locks entered together are Figure 9's bug,
    // not lockstep-ordered code. An explicit __syncwarp still does.
    if !flags.dev_shared
        && !flags.blk_shared
        && curr.warp_id == md.info.warp_id
        && (md.info.warp_bar != curr.snap.warp_bar
            || (curr.active_mask & (1 << md.info.lane) != 0 && !disjointly_locked(entry, curr)))
    {
        return Some(Safe::WarpSynced);
    }

    // P5: barrier access — same block with an intervening __syncthreads.
    if !flags.dev_shared && md_block == curr.block_id && md.info.blk_bar != curr.snap.blk_bar {
        return Some(Safe::Barrier);
    }

    // P6: safe atomic access — both atomic with sufficient scope.
    //
    // Two extensions (documented in DESIGN.md) make the condition cover
    // the flag-polling protocols ubiquitous in the paper's workloads
    // (grid sync's `while(*arrived != gridSize)`, transactional retry
    // loops), on which the paper reports zero false positives:
    //
    // - P6a: a word-sized *load* of a location only ever written by
    //   atomics is hardware-atomic on GPUs and is treated as a relaxed
    //   atomic read — safe under the same scope condition;
    // - P6b: an atomic *write* to a location that has only been read so
    //   far is a publication; relaxed atomicity means no torn data.
    //
    // Insufficient scope still falls through to R1 in both cases.
    let scope_sufficient = md_block == curr.block_id || !flags.scope_block;
    if flags.atomic && scope_sufficient && (curr.kind.is_atomic() || curr.kind == AccessType::Load)
    {
        return Some(Safe::SafeAtomic);
    }
    if curr.kind.is_atomic() && !flags.modified {
        return Some(Safe::SafeAtomic);
    }

    None
}

/// Runs R1–R5 in order; the first satisfied condition is the race class.
#[must_use]
pub fn detailed(
    entry: &MetadataEntry,
    md: &MdView,
    curr: &CurrAccess,
    warps_per_block: u32,
) -> Option<RaceKind> {
    let flags = entry.flags;
    let md_block = md.info.block_id(warps_per_block);
    let writer_block = entry.writer.block_id(warps_per_block);

    // R1: scoped-atomic race — the location is used with block-scope
    // atomics but crossed a block boundary.
    if flags.atomic && flags.scope_block && writer_block != curr.block_id {
        return Some(RaceKind::AtomicScope);
    }

    // R5 (hoisted): both sides locked with an empty intersection — the
    // Figure 9 class. Checked before R2–R4 so the verdict is the same on
    // every schedule: a split schedule would otherwise classify the same
    // buggy pair as an ITS/BR/DR race, and a schedule where the first
    // thread's unlock fence already landed would suppress R2–R4 entirely.
    if disjointly_locked(entry, curr) {
        return Some(RaceKind::Locking);
    }

    // R2: intra-warp (ITS) race — same warp, no fence by md's thread since
    // its access, location never shared wider than this warp.
    if md.info.warp_id == curr.warp_id
        && !md.fenced_since()
        && !flags.dev_shared
        && !flags.blk_shared
    {
        return Some(RaceKind::IntraWarp);
    }

    // R3: intra-block race — same block, no fence since, not device-shared.
    if md_block == curr.block_id && !md.fenced_since() && !flags.dev_shared {
        return Some(RaceKind::IntraBlock);
    }

    // R4: inter-block race — different blocks, no *device-scope* fence by
    // md's thread since its access.
    if md_block != curr.block_id && !md.dev_fenced_since() {
        return Some(RaceKind::InterBlock);
    }

    // R5: missing-lock race — locks are in play but the locksets are
    // disjoint.
    if (entry.locks != 0 || curr.locks != 0) && (entry.locks & curr.locks) == 0 {
        return Some(RaceKind::Locking);
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfield::Flags;

    const WPB: u32 = 4; // warps per block in these scenarios

    fn info(warp: u32, lane: u32) -> AccessorInfo {
        AccessorInfo {
            warp_id: warp,
            lane,
            ..AccessorInfo::default()
        }
    }

    fn entry_with(flags: Flags, accessor: AccessorInfo, writer: AccessorInfo) -> MetadataEntry {
        MetadataEntry {
            tag: 0,
            flags,
            accessor,
            writer,
            locks: 0,
        }
    }

    fn md(i: AccessorInfo) -> MdView {
        MdView {
            info: i,
            live_dev_fence: i.dev_fence,
            live_blk_fence: i.blk_fence,
        }
    }

    fn curr(kind: AccessType, warp: u32, lane: u32) -> CurrAccess {
        CurrAccess {
            kind,
            warp_id: warp,
            lane,
            block_id: warp / WPB,
            active_mask: 1 << lane,
            snap: info(warp, lane),
            locks: 0,
        }
    }

    fn valid_flags() -> Flags {
        Flags {
            valid: true,
            ..Flags::default()
        }
    }

    // ---- P conditions -------------------------------------------------------

    #[test]
    fn p2_unmodified_load_is_safe() {
        let e = entry_with(valid_flags(), info(0, 0), AccessorInfo::default());
        let c = curr(AccessType::Load, 1, 3);
        assert_eq!(preliminary(&e, &md(e.writer), &c, WPB), Some(Safe::NoWrite));
    }

    #[test]
    fn p2_does_not_apply_to_stores() {
        let mut f = valid_flags();
        f.blk_shared = true; // block P3/P4
        let e = entry_with(f, info(0, 0), info(0, 0));
        let c = curr(AccessType::Store, 1, 3);
        assert_eq!(preliminary(&e, &md(e.accessor), &c, WPB), None);
    }

    #[test]
    fn p3_program_order_same_thread() {
        let mut f = valid_flags();
        f.modified = true;
        let e = entry_with(f, info(2, 7), info(2, 7));
        let c = curr(AccessType::Store, 2, 7);
        assert_eq!(
            preliminary(&e, &md(e.accessor), &c, WPB),
            Some(Safe::ProgramOrder)
        );
    }

    #[test]
    fn p3_requires_unshared_location() {
        let mut f = valid_flags();
        f.modified = true;
        f.blk_shared = true; // another warp of the block touched it
        let e = entry_with(f, info(2, 7), info(2, 7));
        let c = curr(AccessType::Store, 2, 7);
        assert_ne!(
            preliminary(&e, &md(e.accessor), &c, WPB),
            Some(Safe::ProgramOrder)
        );
    }

    #[test]
    fn p4_syncwarp_separates_same_warp_accesses() {
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 1); // lane 1 wrote, warp_bar counter was 0
        let e = entry_with(f, prev, prev);
        let mut c = curr(AccessType::Load, 2, 0);
        c.snap.warp_bar = 1; // a __syncwarp released since
        assert_eq!(
            preliminary(&e, &md(e.writer), &c, WPB),
            Some(Safe::WarpSynced)
        );
    }

    #[test]
    fn p4_converged_threads_are_ordered() {
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 1);
        let e = entry_with(f, prev, prev);
        let mut c = curr(AccessType::Load, 2, 0);
        c.active_mask = 0b11; // lanes 0 and 1 executing together (lockstep)
        assert_eq!(
            preliminary(&e, &md(e.writer), &c, WPB),
            Some(Safe::WarpSynced)
        );
    }

    #[test]
    fn p4_diverged_unsynced_same_warp_is_not_safe() {
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 1);
        let e = entry_with(f, prev, prev);
        let c = curr(AccessType::Load, 2, 0); // mask = lane 0 only, no syncwarp
        assert_eq!(preliminary(&e, &md(e.writer), &c, WPB), None);
    }

    #[test]
    fn p5_syncthreads_separates_same_block_accesses() {
        let mut f = valid_flags();
        f.modified = true;
        f.blk_shared = true;
        let prev = info(0, 3); // warp 0, block 0, blk_bar was 0
        let e = entry_with(f, prev, prev);
        let mut c = curr(AccessType::Store, 1, 3); // warp 1, same block 0
        c.snap.blk_bar = 1; // a __syncthreads released since
        assert_eq!(
            preliminary(&e, &md(e.accessor), &c, WPB),
            Some(Safe::Barrier)
        );
    }

    #[test]
    fn p5_does_not_apply_across_blocks() {
        let mut f = valid_flags();
        f.modified = true;
        f.dev_shared = true;
        let prev = info(0, 3);
        let e = entry_with(f, prev, prev);
        let mut c = curr(AccessType::Store, 5, 3); // block 1
        c.snap.blk_bar = 1;
        assert_eq!(preliminary(&e, &md(e.accessor), &c, WPB), None);
    }

    #[test]
    fn p6_device_scope_atomics_are_safe_across_blocks() {
        let mut f = valid_flags();
        f.modified = true;
        f.atomic = true;
        f.scope_block = false;
        f.dev_shared = true;
        let prev = info(0, 0);
        let e = entry_with(f, prev, prev);
        let c = curr(AccessType::Atomic { scope_block: false }, 5, 0); // block 1
        assert_eq!(
            preliminary(&e, &md(e.accessor), &c, WPB),
            Some(Safe::SafeAtomic)
        );
    }

    #[test]
    fn p6_block_scope_atomics_safe_within_block() {
        let mut f = valid_flags();
        f.modified = true;
        f.atomic = true;
        f.scope_block = true;
        f.blk_shared = true;
        let prev = info(0, 0);
        let e = entry_with(f, prev, prev);
        let c = curr(AccessType::Atomic { scope_block: true }, 1, 0); // same block
        assert_eq!(
            preliminary(&e, &md(e.accessor), &c, WPB),
            Some(Safe::SafeAtomic)
        );
    }

    #[test]
    fn p6_block_scope_atomics_not_safe_across_blocks() {
        let mut f = valid_flags();
        f.modified = true;
        f.atomic = true;
        f.scope_block = true;
        f.dev_shared = true;
        let prev = info(0, 0);
        let e = entry_with(f, prev, prev);
        let c = curr(AccessType::Atomic { scope_block: false }, 5, 0); // block 1
        assert_eq!(preliminary(&e, &md(e.accessor), &c, WPB), None);
    }

    // ---- R conditions -------------------------------------------------------

    #[test]
    fn r1_scoped_atomic_race_fires_across_blocks() {
        // The Figure 1 bug: last atomic was block scoped, current accessor
        // is in another block.
        let mut f = valid_flags();
        f.modified = true;
        f.atomic = true;
        f.scope_block = true;
        f.dev_shared = true;
        let writer = info(0, 0); // block 0
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Atomic { scope_block: false }, 5, 0); // block 1
        assert_eq!(
            detailed(&e, &md(e.accessor), &c, WPB),
            Some(RaceKind::AtomicScope)
        );
    }

    #[test]
    fn r2_intra_warp_race_without_fence() {
        // The Figure 8 bug: same warp, diverged, no fence since the store.
        let mut f = valid_flags();
        f.modified = true;
        let writer = info(2, 1);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Load, 2, 0);
        assert_eq!(
            detailed(&e, &md(e.writer), &c, WPB),
            Some(RaceKind::IntraWarp)
        );
    }

    #[test]
    fn r2_suppressed_if_md_thread_fenced_since() {
        let mut f = valid_flags();
        f.modified = true;
        let writer = info(2, 1);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Load, 2, 0);
        let m = MdView {
            info: writer,
            live_dev_fence: 1,
            live_blk_fence: 0,
        };
        // R2 fails; falls through to R3 (same block) which also requires no
        // fence — the device fence suppresses both; R4 needs cross-block;
        // R5 needs locks. No race.
        assert_eq!(detailed(&e, &m, &c, WPB), None);
    }

    #[test]
    fn r3_intra_block_race_across_warps() {
        let mut f = valid_flags();
        f.modified = true;
        f.blk_shared = true;
        let writer = info(0, 3); // block 0
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Store, 1, 3); // warp 1, block 0
        assert_eq!(
            detailed(&e, &md(e.accessor), &c, WPB),
            Some(RaceKind::IntraBlock)
        );
    }

    #[test]
    fn r3_suppressed_by_block_fence_of_md_thread() {
        let mut f = valid_flags();
        f.modified = true;
        f.blk_shared = true;
        let writer = info(0, 3);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Store, 1, 3);
        let m = MdView {
            info: writer,
            live_dev_fence: 0,
            live_blk_fence: 1,
        };
        assert_eq!(detailed(&e, &m, &c, WPB), None);
    }

    #[test]
    fn r4_inter_block_race_without_device_fence() {
        // The Figure 10 bug: writer in another block never device-fenced.
        let mut f = valid_flags();
        f.modified = true;
        f.dev_shared = true;
        let writer = info(0, 3); // block 0
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Load, 5, 0); // block 1
        assert_eq!(
            detailed(&e, &md(e.writer), &c, WPB),
            Some(RaceKind::InterBlock)
        );
    }

    #[test]
    fn r4_block_fence_is_insufficient_across_blocks() {
        let mut f = valid_flags();
        f.modified = true;
        f.dev_shared = true;
        let writer = info(0, 3);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Load, 5, 0);
        // md's thread executed only a *block* fence: still an R4 race.
        let m = MdView {
            info: writer,
            live_dev_fence: 0,
            live_blk_fence: 1,
        };
        assert_eq!(detailed(&e, &m, &c, WPB), Some(RaceKind::InterBlock));
    }

    #[test]
    fn r4_suppressed_by_device_fence() {
        let mut f = valid_flags();
        f.modified = true;
        f.dev_shared = true;
        let writer = info(0, 3);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Load, 5, 0);
        let m = MdView {
            info: writer,
            live_dev_fence: 5,
            live_blk_fence: 0,
        };
        assert_eq!(detailed(&e, &m, &c, WPB), None);
    }

    #[test]
    fn r5_disjoint_locksets_race() {
        // The Figure 9 bug: both sides hold locks, but different ones.
        let mut f = valid_flags();
        f.modified = true;
        let writer = info(2, 1);
        let mut e = entry_with(f, writer, writer);
        e.locks = 0b0011; // writer held lock A
                          // md's thread fenced since (the unlock fence) so R2/R3 don't fire.
        let m = MdView {
            info: writer,
            live_dev_fence: 1,
            live_blk_fence: 0,
        };
        let mut c = curr(AccessType::Store, 2, 0);
        c.locks = 0b1100; // current thread holds lock B
        assert_eq!(detailed(&e, &m, &c, WPB), Some(RaceKind::Locking));
    }

    #[test]
    fn r5_common_lock_is_race_free() {
        let mut f = valid_flags();
        f.modified = true;
        let writer = info(2, 1);
        let mut e = entry_with(f, writer, writer);
        e.locks = 0b0110;
        let m = MdView {
            info: writer,
            live_dev_fence: 1,
            live_blk_fence: 0,
        };
        let mut c = curr(AccessType::Store, 2, 0);
        c.locks = 0b0110;
        assert_eq!(
            detailed(&e, &m, &c, WPB),
            None,
            "common lock ⇒ no P or R satisfied"
        );
    }

    #[test]
    fn p4_convergence_does_not_excuse_disjoint_locks() {
        // Figure 9 under lockstep: both lanes entered their differently-
        // locked critical sections together. P4's in-mask clause must not
        // mark the pair safe, and the verdict must be IL on this schedule
        // too (not ITS via R2).
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 0);
        let mut e = entry_with(f, prev, prev);
        e.locks = 0b0011;
        let m = md(prev);
        let mut c = curr(AccessType::Store, 2, 1);
        c.active_mask = 0b11; // previous accessor's lane is converged
        c.locks = 0b1100;
        assert_eq!(preliminary(&e, &m, &c, WPB), None);
        assert_eq!(detailed(&e, &m, &c, WPB), Some(RaceKind::Locking));
    }

    #[test]
    fn p4_convergence_still_excuses_common_lock() {
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 0);
        let mut e = entry_with(f, prev, prev);
        e.locks = 0b0110;
        let m = md(prev);
        let mut c = curr(AccessType::Store, 2, 1);
        c.active_mask = 0b11;
        c.locks = 0b0110;
        assert_eq!(preliminary(&e, &m, &c, WPB), Some(Safe::WarpSynced));
    }

    #[test]
    fn p4_convergence_still_excuses_one_sided_locks() {
        // Only one side holds a lock: the hierarchy of sync checks still
        // applies (no intended-but-failed mutual exclusion between them).
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 0);
        let mut e = entry_with(f, prev, prev);
        e.locks = 0b0011;
        let m = md(prev);
        let mut c = curr(AccessType::Store, 2, 1);
        c.active_mask = 0b11;
        c.locks = 0;
        assert_eq!(preliminary(&e, &m, &c, WPB), Some(Safe::WarpSynced));
    }

    #[test]
    fn syncwarp_still_orders_disjointly_locked_sections() {
        // An explicit __syncwarp between the two critical sections is real
        // happens-before ordering; the pair is not racy.
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 0);
        let mut e = entry_with(f, prev, prev);
        e.locks = 0b0011;
        let m = md(prev);
        let mut c = curr(AccessType::Store, 2, 1);
        c.active_mask = 0b10; // split apart...
        c.snap.warp_bar = prev.warp_bar + 1; // ...but syncwarp'd since
        c.locks = 0b1100;
        assert_eq!(preliminary(&e, &m, &c, WPB), Some(Safe::WarpSynced));
    }

    #[test]
    fn disjoint_locks_beat_r2_on_split_schedules() {
        // Mid-critical-section split: no fence from the previous thread
        // yet, so R2 would fire — but the IL classification must win so
        // the verdict does not depend on the schedule.
        let mut f = valid_flags();
        f.modified = true;
        let prev = info(2, 0);
        let mut e = entry_with(f, prev, prev);
        e.locks = 0b0011;
        let m = md(prev); // no fence since the access
        let mut c = curr(AccessType::Store, 2, 1);
        c.active_mask = 0b10; // diverged
        c.locks = 0b1100;
        assert_eq!(detailed(&e, &m, &c, WPB), Some(RaceKind::Locking));
    }

    #[test]
    fn r5_one_sided_locking_races() {
        let mut f = valid_flags();
        f.modified = true;
        let writer = info(2, 1);
        let e = entry_with(f, writer, writer); // writer held no locks
        let m = MdView {
            info: writer,
            live_dev_fence: 1,
            live_blk_fence: 0,
        };
        let mut c = curr(AccessType::Store, 2, 0);
        c.locks = 0b1000;
        assert_eq!(detailed(&e, &m, &c, WPB), Some(RaceKind::Locking));
    }

    #[test]
    fn check_order_r1_beats_r4() {
        // A cross-block access that violates both atomic scope and fencing
        // must be classified as AS (R1 is checked first).
        let mut f = valid_flags();
        f.modified = true;
        f.atomic = true;
        f.scope_block = true;
        f.dev_shared = true;
        let writer = info(0, 0);
        let e = entry_with(f, writer, writer);
        let c = curr(AccessType::Store, 5, 0);
        assert_eq!(
            detailed(&e, &md(e.accessor), &c, WPB),
            Some(RaceKind::AtomicScope)
        );
    }

    #[test]
    fn race_kind_codes_match_table4() {
        assert_eq!(RaceKind::AtomicScope.code(), "AS");
        assert_eq!(RaceKind::IntraWarp.code(), "ITS");
        assert_eq!(RaceKind::IntraBlock.code(), "BR");
        assert_eq!(RaceKind::InterBlock.code(), "DR");
        assert_eq!(RaceKind::Locking.code(), "IL");
    }
}
