//! Synchronization metadata (§6.1): the live counters that record each
//! thread's / warp's / block's most recent synchronization operations.
//!
//! - one **block barrier counter** per threadblock (8-bit, wraps),
//!   incremented on every released `__syncthreads()`;
//! - one **warp barrier counter** per warp (6-bit), incremented on every
//!   released `__syncwarp()` — the counter that is *unique to iGUARD* and
//!   enables ITS race detection;
//! - two **fence counters per thread** (6-bit each), one per scope, because
//!   CUDA defines fence semantics per thread and ITS lets threads of a warp
//!   diverge (§6.1).
//!
//! Total size in the paper is ~2 MB; here it is sized per launch.

use crate::bitfield::{wrapping_inc, BLK_BAR_BITS, FENCE_BITS, WARP_BAR_BITS};
use gpu_sim::ir::{Scope, WARP_SIZE};

/// Per-launch synchronization counters.
#[derive(Debug, Clone)]
pub struct SyncMetadata {
    blk_bar: Vec<u8>,
    warp_bar: Vec<u8>,
    dev_fence: Vec<u8>,
    blk_fence: Vec<u8>,
    warps_per_block: u32,
}

impl SyncMetadata {
    /// Sizes counters for a grid of `blocks` × `warps_per_block` warps.
    #[must_use]
    pub fn new(blocks: u32, warps_per_block: u32) -> Self {
        let warps = (blocks * warps_per_block) as usize;
        let threads = warps * WARP_SIZE;
        SyncMetadata {
            blk_bar: vec![0; blocks as usize],
            warp_bar: vec![0; warps],
            dev_fence: vec![0; threads],
            blk_fence: vec![0; threads],
            warps_per_block,
        }
    }

    /// Approximate bytes this structure occupies (the paper's ~2 MB check).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.blk_bar.len() + self.warp_bar.len() + self.dev_fence.len() + self.blk_fence.len()
    }

    /// Global thread slot for (`global_warp`, `lane`).
    fn thread_slot(&self, global_warp: u32, lane: u32) -> usize {
        global_warp as usize * WARP_SIZE + lane as usize
    }

    /// Records a released `__syncthreads()` in `block`.
    pub fn block_barrier(&mut self, block: u32) {
        let c = &mut self.blk_bar[block as usize];
        *c = wrapping_inc(*c, BLK_BAR_BITS);
    }

    /// Records a released `__syncwarp()` in `global_warp`.
    pub fn warp_barrier(&mut self, global_warp: u32) {
        let c = &mut self.warp_bar[global_warp as usize];
        *c = wrapping_inc(*c, WARP_BAR_BITS);
    }

    /// Records a scoped fence executed by thread (`global_warp`, `lane`).
    pub fn fence(&mut self, scope: Scope, global_warp: u32, lane: u32) {
        let slot = self.thread_slot(global_warp, lane);
        let c = match scope {
            Scope::Device => &mut self.dev_fence[slot],
            Scope::Block => &mut self.blk_fence[slot],
        };
        *c = wrapping_inc(*c, FENCE_BITS);
    }

    /// Current block barrier counter of `block`.
    #[must_use]
    pub fn blk_bar(&self, block: u32) -> u8 {
        self.blk_bar[block as usize]
    }

    /// Current warp barrier counter of `global_warp`.
    #[must_use]
    pub fn warp_bar(&self, global_warp: u32) -> u8 {
        self.warp_bar[global_warp as usize]
    }

    /// Current device-scope fence counter of a thread.
    #[must_use]
    pub fn dev_fence(&self, global_warp: u32, lane: u32) -> u8 {
        self.dev_fence[self.thread_slot(global_warp, lane)]
    }

    /// Current block-scope fence counter of a thread.
    #[must_use]
    pub fn blk_fence(&self, global_warp: u32, lane: u32) -> u8 {
        self.blk_fence[self.thread_slot(global_warp, lane)]
    }

    /// Warps per block of the running kernel (constant per launch, §6.2).
    #[must_use]
    pub fn warps_per_block(&self) -> u32 {
        self.warps_per_block
    }

    /// Snapshot of one thread's counters, as copied into memory metadata
    /// on each access.
    #[must_use]
    pub fn snapshot(&self, global_warp: u32, lane: u32) -> crate::bitfield::AccessorInfo {
        let block = global_warp / self.warps_per_block.max(1);
        crate::bitfield::AccessorInfo {
            warp_id: global_warp,
            lane,
            dev_fence: self.dev_fence(global_warp, lane),
            blk_fence: self.blk_fence(global_warp, lane),
            blk_bar: self.blk_bar(block),
            warp_bar: self.warp_bar(global_warp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let mut s = SyncMetadata::new(2, 2);
        assert_eq!(s.blk_bar(0), 0);
        s.block_barrier(0);
        assert_eq!(s.blk_bar(0), 1);
        assert_eq!(s.blk_bar(1), 0, "other block unaffected");

        s.warp_barrier(3);
        assert_eq!(s.warp_bar(3), 1);
        assert_eq!(s.warp_bar(0), 0);
    }

    #[test]
    fn fence_counters_are_per_thread_and_per_scope() {
        let mut s = SyncMetadata::new(1, 1);
        s.fence(Scope::Device, 0, 5);
        assert_eq!(s.dev_fence(0, 5), 1);
        assert_eq!(s.blk_fence(0, 5), 0, "scopes tracked separately");
        assert_eq!(s.dev_fence(0, 6), 0, "fences are per thread (§6.1)");
    }

    #[test]
    fn block_barrier_wraps_at_256() {
        let mut s = SyncMetadata::new(1, 1);
        for _ in 0..256 {
            s.block_barrier(0);
        }
        assert_eq!(
            s.blk_bar(0),
            0,
            "the §6.7 wrap-around at exactly 256 syncthreads"
        );
    }

    #[test]
    fn fence_counter_wraps_at_64() {
        let mut s = SyncMetadata::new(1, 1);
        for _ in 0..64 {
            s.fence(Scope::Block, 0, 0);
        }
        assert_eq!(s.blk_fence(0, 0), 0);
    }

    #[test]
    fn snapshot_copies_all_relevant_counters() {
        let mut s = SyncMetadata::new(2, 2);
        s.block_barrier(1); // block of warp 2 and 3
        s.warp_barrier(3);
        s.fence(Scope::Device, 3, 7);
        let snap = s.snapshot(3, 7);
        assert_eq!(snap.warp_id, 3);
        assert_eq!(snap.lane, 7);
        assert_eq!(snap.blk_bar, 1);
        assert_eq!(snap.warp_bar, 1);
        assert_eq!(snap.dev_fence, 1);
        assert_eq!(snap.blk_fence, 0);
    }

    #[test]
    fn footprint_is_modest() {
        // 72 blocks × 8 warps: comfortably under the paper's ~2 MB.
        let s = SyncMetadata::new(72, 8);
        assert!(s.footprint_bytes() < 2 << 20);
    }
}
