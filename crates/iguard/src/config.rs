//! Detector configuration, including the §6.5 optimization toggles used by
//! the Figure 12 ablation and the §6.7 accessor-history ablation.

use faults::FaultConfig;
use uvm_sim::UvmConfig;

/// Tunable parameters of the iGUARD detector.
#[derive(Debug, Clone)]
pub struct IguardConfig {
    /// Coalesce same-address load/atomic metadata accesses within a warp
    /// split (§6.5 optimization 1). On by default.
    pub coalescing: bool,
    /// Dynamically-adjusted exponential backoff on metadata-lock contention
    /// (§6.5 optimization 2). On by default.
    pub backoff: bool,
    /// Parallel cycles per race check (metadata read, condition evaluation,
    /// metadata write-back).
    pub check_cost: u64,
    /// Parallel cycles to acquire/release the per-entry metadata lock when
    /// uncontended.
    pub md_lock_cost: u64,
    /// Serial cycles per unit of metadata-lock contention (the critical
    /// section others must wait out).
    pub contention_base: u64,
    /// Scheduler-step window within which two accesses to the same entry
    /// count as concurrent. 0 = auto (scales with the launch's warp count).
    pub contention_window: u64,
    /// UVM driver cost model for the managed metadata region.
    pub uvm: UvmConfig,
    /// Prefault metadata onto the device when free memory allows (§6.1).
    pub prefault: bool,
    /// Logical address multiplier for footprint-scaling experiments
    /// (Figure 14); 1 for normal operation.
    pub addr_scale: u64,
    /// How many previous accessors to remember per location (§6.7
    /// ablation). 1 = the paper's default (last accessor + last writer).
    pub history_depth: usize,
    /// Support Independent Thread Scheduling (warp-barrier tracking, R2,
    /// per-thread lock protocols). `false` emulates ScoRD's detection
    /// model, which assumes lockstep warps and therefore misses ITS races
    /// (§4, §7.1: "iGUARD caught 5 more previously unreported true races
    /// in ScoR due to ITS. ScoRD did not report them").
    pub its_support: bool,
    /// Race-report buffer capacity in records (1 MB ≈ 16 K records).
    pub report_capacity: usize,
    /// One-time setup cost for allocating + registering metadata (cycles,
    /// charged serially at first launch).
    pub setup_fixed_cost: u64,
    /// Per-launch miscellaneous cost (kernel load, report drain).
    pub misc_cost_per_launch: u64,
    /// Metadata-table entry-capacity override. `None` (default) covers
    /// every word injectively; `Some(n)` caps the table at `n` entries,
    /// forcing bounded eviction with missed-check accounting under
    /// pressure (`bench --bin pressure`).
    pub table_capacity_words: Option<usize>,
    /// Fault-injection plane for detector-side components (metadata
    /// table, backing UVM region, race-report channel). Disabled by
    /// default; a disabled plane draws nothing and changes nothing.
    pub faults: FaultConfig,
}

impl Default for IguardConfig {
    fn default() -> Self {
        IguardConfig {
            coalescing: true,
            backoff: true,
            check_cost: 18,
            md_lock_cost: 4,
            contention_base: 8,
            contention_window: 0,
            uvm: UvmConfig::default(),
            prefault: true,
            addr_scale: 1,
            history_depth: 1,
            its_support: true,
            report_capacity: 16 * 1024,
            setup_fixed_cost: 150,
            misc_cost_per_launch: 100,
            table_capacity_words: None,
            faults: FaultConfig::disabled(),
        }
    }
}

impl IguardConfig {
    /// The §6.5-ablation baseline: both contention optimizations off.
    #[must_use]
    pub fn without_contention_opts() -> Self {
        IguardConfig {
            coalescing: false,
            backoff: false,
            ..IguardConfig::default()
        }
    }

    /// Variant remembering the last `n` accessors per location (§6.7).
    #[must_use]
    pub fn with_history(n: usize) -> Self {
        IguardConfig {
            history_depth: n.max(1),
            ..IguardConfig::default()
        }
    }

    /// A ScoRD-like detector: same scoped-race logic, no ITS support.
    #[must_use]
    pub fn scord_like() -> Self {
        IguardConfig {
            its_support: false,
            ..IguardConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_both_optimizations() {
        let c = IguardConfig::default();
        assert!(c.coalescing && c.backoff);
        assert_eq!(c.history_depth, 1);
    }

    #[test]
    fn ablation_config_disables_optimizations() {
        let c = IguardConfig::without_contention_opts();
        assert!(!c.coalescing && !c.backoff);
    }

    #[test]
    fn history_is_at_least_one() {
        assert_eq!(IguardConfig::with_history(0).history_depth, 1);
        assert_eq!(IguardConfig::with_history(8).history_depth, 8);
    }
}
