//! The iGUARD detector: an `nvbit-sim` tool that performs the entire race
//! detection "on the GPU" — i.e., inside the instrumentation callbacks,
//! in parallel with kernel execution, with no CPU-side analysis (§5).
//!
//! Per dynamic global-memory access it:
//! 1. runs lock inference on atomics (§6.3);
//! 2. opportunistically **coalesces** same-address loads/atomics of a warp
//!    split into one metadata operation (§6.5, optimization 1);
//! 3. touches the UVM-backed metadata entry (faults charge cycles, §6.1);
//! 4. charges metadata-lock **contention**, tamed by dynamically-adjusted
//!    exponential backoff (§6.5, optimization 2);
//! 5. updates shared flags, runs the two-tier P/R checks of Table 2, and
//!    writes back the metadata (§6.2, §6.4);
//! 6. reports races to the host buffer without stopping execution (§5).

use std::collections::{HashMap, VecDeque};

use gpu_sim::hook::{AccessKind, LaneAccess, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::{AtomOp, Scope, Space};
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::Tool;

use crate::bitfield::{AccessorInfo, MetadataEntry};
use crate::checks::{detailed, preliminary, AccessType, CurrAccess, MdView, RaceKind, Safe};
use crate::config::IguardConfig;
use crate::locks::WarpLockState;
use crate::metadata::{MetadataTable, ENTRY_BYTES};
use crate::report::{RaceRecord, RaceReporter, RaceSite};
use crate::syncmeta::SyncMetadata;

/// Aggregate detector counters for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct IguardStats {
    /// Lane-level accesses actually processed (after coalescing).
    pub accesses: u64,
    /// Lane accesses skipped thanks to coalescing.
    pub coalesced_saved: u64,
    /// Hits per preliminary condition P1..P6.
    pub safe_hits: [u64; 6],
    /// Hits per detailed condition R1..R5.
    pub race_hits: [u64; 5],
    /// Accesses that found their metadata entry contended.
    pub contended_accesses: u64,
    /// Serial cycles charged for metadata-lock contention.
    pub contention_cycles: u64,
    /// Serial cycles charged for UVM faults on metadata pages.
    pub uvm_cycles: u64,
    /// Kernel launches observed.
    pub launches: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Contention {
    last_step: u64,
    last_warp: u32,
    streak: u32,
}

#[derive(Debug, Clone)]
struct HistRecord {
    info: AccessorInfo,
    locks: u16,
}

/// The iGUARD race detector.
#[derive(Debug)]
pub struct Iguard {
    cfg: IguardConfig,
    sync: Option<SyncMetadata>,
    locks: Vec<WarpLockState>,
    table: Option<MetadataTable>,
    reporter: RaceReporter,
    contention: HashMap<u32, Contention>,
    history: HashMap<u32, VecDeque<HistRecord>>,
    stats: IguardStats,
    total_warps: u32,
    window: u64,
    /// Reusable scratch for the uncoalesced same-entry dedup check, so the
    /// per-split hot path does not heap-allocate.
    scratch_words: Vec<u32>,
    /// Reusable scratch for lock-inference (lane, addr) pairs.
    scratch_pairs: Vec<(u32, u32)>,
}

impl Default for Iguard {
    fn default() -> Self {
        Self::new(IguardConfig::default())
    }
}

impl Iguard {
    /// Creates a detector with the given configuration.
    #[must_use]
    pub fn new(cfg: IguardConfig) -> Self {
        let reporter = RaceReporter::new(cfg.report_capacity);
        Iguard {
            cfg,
            sync: None,
            locks: Vec::new(),
            table: None,
            reporter,
            contention: HashMap::new(),
            history: HashMap::new(),
            stats: IguardStats::default(),
            total_warps: 0,
            window: 64,
            scratch_words: Vec::with_capacity(32),
            scratch_pairs: Vec::with_capacity(32),
        }
    }

    /// Detector counters.
    #[must_use]
    pub fn stats(&self) -> IguardStats {
        self.stats
    }

    /// UVM statistics of the metadata region (empty before first launch).
    #[must_use]
    pub fn uvm_stats(&self) -> uvm_sim::UvmStats {
        self.table
            .as_ref()
            .map(MetadataTable::uvm_stats)
            .unwrap_or_default()
    }

    /// Number of unique races detected so far.
    #[must_use]
    pub fn unique_races(&self) -> usize {
        self.reporter.unique_races()
    }

    /// Dynamic race occurrences (before deduplication).
    #[must_use]
    pub fn dynamic_races(&self) -> u64 {
        self.reporter.dynamic_races
    }

    /// Drains all shipped race reports.
    pub fn races(&mut self) -> Vec<RaceRecord> {
        self.reporter.drain()
    }

    /// Drains reports grouped into distinct sites (the Table 4 unit).
    pub fn race_sites(&mut self) -> Vec<RaceSite> {
        let records = self.reporter.drain();
        crate::report::group_sites(&records)
    }

    fn sync(&self) -> &SyncMetadata {
        self.sync
            .as_ref()
            .expect("detector received access before launch")
    }

    /// Charges metadata-lock serialization for one access to `word` and
    /// returns nothing; the model is described in DESIGN.md §4: a streak of
    /// temporally-close accesses to the same entry by different warps
    /// approximates the number of contenders for the entry's lock.
    fn charge_contention(&mut self, word: u32, warp: u32, step: u64, clock: &mut Clock) {
        let c = self.contention.entry(word).or_default();
        let close = step.saturating_sub(c.last_step) <= self.window;
        if close && c.last_warp != warp {
            c.streak = c.streak.saturating_add(1);
        } else if !close {
            c.streak = 1;
        }
        c.last_step = step;
        c.last_warp = warp;
        if c.streak > 1 {
            self.stats.contended_accesses += 1;
            let cycles = if self.cfg.backoff {
                // Dynamically-adjusted exponential backoff: contenders
                // spread out and hand the lock off cleanly, so each pays
                // roughly one critical section of serialization.
                self.cfg.contention_base
            } else {
                // Unmitigated CAS hammering: every retry burns memory
                // bandwidth and delays the holder, so the per-access waste
                // grows with the number of concurrent contenders.
                2 * u64::from(c.streak.min(96))
            };
            self.stats.contention_cycles += cycles;
            clock.charge_serial(CostCategory::Detection, cycles);
        }
    }

    /// The per-access detection pipeline (§6.2, §6.4).
    ///
    /// Cycle charges for the data-parallel part of the check happen once
    /// per warp split in [`Tool::on_mem`] (the injected device function
    /// runs on the SIMD unit, all lanes in parallel); this method charges
    /// only the *serializing* components — UVM faults and metadata-lock
    /// contention.
    #[allow(clippy::too_many_arguments)]
    fn process_access(
        &mut self,
        lane_access: &LaneAccess,
        kind: AccessType,
        access: &MemAccess<'_>,
        clock: &mut Clock,
    ) {
        self.stats.accesses += 1;

        let word = lane_access.addr / 4;
        let warp = access.global_warp;
        let lane = lane_access.lane;
        let block = access.block_id;
        let wpb = access.warps_per_block;

        // Metadata lookup: UVM touch + contention serialization.
        let loaded = self.table.as_mut().expect("launched").load(word);
        if loaded.uvm_cycles > 0 {
            self.stats.uvm_cycles += loaded.uvm_cycles;
            clock.charge_serial(CostCategory::Detection, loaded.uvm_cycles);
        }
        self.charge_contention(word, warp, access.step, clock);

        let mut entry = loaded.entry;
        let snap = self.sync().snapshot(warp, lane);
        let lock_summary = self.locks[warp as usize].summary(lane);

        if !entry.flags.valid {
            // P1: first access.
            self.stats.safe_hits[0] += 1;
            entry.flags.valid = true;
            entry.accessor = snap;
            if kind.is_write() {
                entry.writer = snap;
                entry.locks = lock_summary;
                entry.flags.modified = true;
                if let AccessType::Atomic { scope_block } = kind {
                    entry.flags.atomic = true;
                    entry.flags.scope_block = scope_block;
                }
            }
            self.push_history(word, snap, lock_summary);
            self.table.as_mut().expect("launched").store(word, entry);
            return;
        }

        // Shared-flag update precedes the checks (§6.2).
        let last_block = entry.accessor.block_id(wpb);
        if last_block != block {
            entry.flags.dev_shared = true;
        } else if entry.accessor.warp_id != warp {
            entry.flags.blk_shared = true;
        }

        let md_info = if kind.is_write() {
            entry.accessor
        } else {
            entry.writer
        };
        let md = self.md_view(md_info);
        let mut curr = CurrAccess {
            kind,
            warp_id: warp,
            lane,
            block_id: block,
            active_mask: access.active_mask,
            snap,
            locks: lock_summary,
        };
        if !self.cfg.its_support && md_info.warp_id == warp {
            // ScoRD mode: the detector predates ITS and assumes lockstep
            // warps -- same-warp accesses are always treated as converged,
            // which is exactly why ScoRD misses ITS races (Sec 4).
            curr.active_mask |= 1 << md_info.lane;
        }

        match preliminary(&entry, &md, &curr, wpb) {
            Some(safe) => {
                let idx = match safe {
                    Safe::FirstAccess => 0,
                    Safe::NoWrite => 1,
                    Safe::ProgramOrder => 2,
                    Safe::WarpSynced => 3,
                    Safe::Barrier => 4,
                    Safe::SafeAtomic => 5,
                };
                self.stats.safe_hits[idx] += 1;
            }
            None => {
                let mut verdict = detailed(&entry, &md, &curr, wpb);
                // §6.7 ablation: with deeper history, also check against
                // older accessors that the 16-byte entry has forgotten.
                if verdict.is_none() && self.cfg.history_depth > 1 {
                    verdict = self.check_history(word, &entry, &curr, wpb);
                }
                if let Some(kind_found) = verdict {
                    self.record_race(kind_found, &curr, access, lane_access, md_info, clock);
                }
            }
        }

        // Metadata write-back: identity + synchronization of the accessor,
        // and of the writer for writes (§6.2).
        entry.accessor = snap;
        if kind.is_write() {
            entry.writer = snap;
            entry.locks = lock_summary;
            entry.flags.modified = true;
            if let AccessType::Atomic { scope_block } = kind {
                entry.flags.atomic = true;
                entry.flags.scope_block = scope_block;
            } else {
                // A plain store supersedes the atomic history of the
                // location: P6 must not treat a plain last-write as a safe
                // atomic (engineering choice documented in DESIGN.md).
                entry.flags.atomic = false;
                entry.flags.scope_block = false;
            }
        }
        self.push_history(word, snap, lock_summary);
        self.table.as_mut().expect("launched").store(word, entry);
    }

    fn md_view(&self, info: AccessorInfo) -> MdView {
        let sync = self.sync();
        // Identity is only meaningful within the current launch epoch; a
        // wrapped WarpID outside the grid falls back to stored counters.
        if info.warp_id < self.total_warps {
            MdView {
                info,
                live_dev_fence: sync.dev_fence(info.warp_id, info.lane),
                live_blk_fence: sync.blk_fence(info.warp_id, info.lane),
            }
        } else {
            MdView {
                info,
                live_dev_fence: info.dev_fence,
                live_blk_fence: info.blk_fence,
            }
        }
    }

    fn push_history(&mut self, word: u32, info: AccessorInfo, locks: u16) {
        if self.cfg.history_depth <= 1 {
            return;
        }
        let q = self.history.entry(word).or_default();
        q.push_back(HistRecord { info, locks });
        while q.len() > self.cfg.history_depth {
            q.pop_front();
        }
    }

    fn check_history(
        &self,
        word: u32,
        entry: &MetadataEntry,
        curr: &CurrAccess,
        wpb: u32,
    ) -> Option<RaceKind> {
        let q = self.history.get(&word)?;
        for rec in q.iter().rev().skip(1) {
            let md = self.md_view(rec.info);
            let mut shadow = *entry;
            shadow.locks = rec.locks;
            if preliminary(&shadow, &md, curr, wpb).is_none() {
                if let Some(kind) = detailed(&shadow, &md, curr, wpb) {
                    return Some(kind);
                }
            }
        }
        None
    }

    fn record_race(
        &mut self,
        kind: RaceKind,
        curr: &CurrAccess,
        access: &MemAccess<'_>,
        lane_access: &LaneAccess,
        md_info: AccessorInfo,
        clock: &mut Clock,
    ) {
        let idx = match kind {
            RaceKind::AtomicScope => 0,
            RaceKind::IntraWarp => 1,
            RaceKind::IntraBlock => 2,
            RaceKind::InterBlock => 3,
            RaceKind::Locking => 4,
        };
        self.stats.race_hits[idx] += 1;
        let record = RaceRecord {
            kernel: access.kernel.name.clone(),
            pc: access.pc,
            line: access.kernel.line(access.pc).map(str::to_owned),
            addr: lane_access.addr,
            kind,
            access: curr.kind,
            warp: curr.warp_id,
            lane: curr.lane,
            block: curr.block_id,
            prev_warp: md_info.warp_id,
            prev_lane: md_info.lane,
        };
        self.reporter.report(record, clock);
    }
}

impl Tool for Iguard {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.stats.launches += 1;
        self.total_warps = info.total_warps;
        self.window = if self.cfg.contention_window > 0 {
            self.cfg.contention_window
        } else {
            64.max(u64::from(info.total_warps))
        };
        self.sync = Some(SyncMetadata::new(info.grid_dim, info.warps_per_block));
        self.locks = vec![WarpLockState::default(); info.total_warps as usize];
        self.contention.clear();
        self.history.clear();

        match &mut self.table {
            Some(table) => table.begin_epoch(),
            None => {
                // First launch: allocate the managed metadata region sized
                // at ~4× device capacity (§6.1) and prefault what fits.
                let virtual_bytes = 4 * info.device_capacity_bytes;
                let mut table = MetadataTable::new(
                    info.backing_words,
                    self.cfg.uvm.clone(),
                    virtual_bytes,
                    info.free_device_bytes,
                    self.cfg.addr_scale,
                );
                let mut setup = self.cfg.setup_fixed_cost;
                if self.cfg.prefault {
                    // Metadata is 4x the data it shadows (Sec 6.1); prefault
                    // as much of it as free device memory allows.
                    let needed = info.app_footprint_bytes.saturating_mul(4);
                    setup += table.prefault(needed.max(ENTRY_BYTES));
                }
                clock.charge_serial(CostCategory::Setup, setup);
                self.table = Some(table);
            }
        }
        clock.charge_serial(CostCategory::Misc, self.cfg.misc_cost_per_launch);
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        // iGUARD proper watches global memory only (§4: scratchpad races
        // are prior tools' domain; see `crate::scratchpad` for that
        // extension).
        if access.space != Space::Global {
            return;
        }
        let kind = match access.kind {
            AccessKind::Load => AccessType::Load,
            // A volatile word store is hardware-atomic and L1-bypassing —
            // the publication half of a flag protocol. Classify it as a
            // relaxed device-scope atomic write so flag polling (covered
            // by the P6 extensions) does not manufacture races.
            AccessKind::Store if access.volatile => AccessType::Atomic { scope_block: false },
            AccessKind::Store => AccessType::Store,
            AccessKind::Atomic { op, scope } => {
                // Lock inference (§6.3) happens before race checking.
                if matches!(op, AtomOp::Cas | AtomOp::Exch) {
                    self.scratch_pairs.clear();
                    self.scratch_pairs
                        .extend(access.lanes.iter().map(|l| (l.lane, l.addr)));
                    let wl = &mut self.locks[access.global_warp as usize];
                    match op {
                        AtomOp::Cas => wl.on_cas(&self.scratch_pairs, scope),
                        AtomOp::Exch => wl.on_exch(&self.scratch_pairs, scope),
                        _ => unreachable!("matched above"),
                    }
                }
                AccessType::Atomic {
                    scope_block: scope == Scope::Block,
                }
            }
        };

        // The injected check runs data-parallel across the split's lanes:
        // one SIMD issue worth of check + (uncontended) metadata lock.
        clock.charge(
            CostCategory::Detection,
            self.cfg.check_cost + self.cfg.md_lock_cost,
        );

        // §6.5 optimization 1: same-address loads/atomics of the active
        // lanes cannot race with each other — one lane checks for all.
        let coalescible = self.cfg.coalescing
            && !matches!(kind, AccessType::Store)
            && access.lanes.len() > 1
            && access.lanes.iter().all(|l| l.addr == access.lanes[0].addr);
        if coalescible {
            self.stats.coalesced_saved += access.lanes.len() as u64 - 1;
            let rep = access.lanes[0];
            self.process_access(&rep, kind, access, clock);
        } else {
            // Lanes hitting the *same* metadata entry serialize on its
            // lock; lanes on distinct entries proceed in parallel. Charge
            // the intra-warp serialization the coalescing optimization
            // exists to remove.
            if access.lanes.len() > 1 {
                self.scratch_words.clear();
                self.scratch_words
                    .extend(access.lanes.iter().map(|l| l.addr / 4));
                self.scratch_words.sort_unstable();
                self.scratch_words.dedup();
                let dup = access.lanes.len() - self.scratch_words.len();
                if dup > 0 {
                    clock.charge(
                        CostCategory::Detection,
                        dup as u64 * (self.cfg.check_cost + self.cfg.md_lock_cost),
                    );
                }
            }
            for i in 0..access.lanes.len() {
                let la = access.lanes[i];
                self.process_access(&la, kind, access, clock);
            }
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        clock.charge(CostCategory::Detection, 4);
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                if let Some(s) = self.sync.as_mut() {
                    s.block_barrier(*block_id);
                }
            }
            SyncEvent::WarpBarrier { global_warp, .. } => {
                if let Some(s) = self.sync.as_mut() {
                    s.warp_barrier(*global_warp);
                }
            }
            SyncEvent::Fence {
                scope,
                global_warp,
                tids,
                ..
            } => {
                let sync = self.sync.as_mut().expect("launched");
                for &(lane, _tid) in tids.iter() {
                    sync.fence(*scope, *global_warp, lane);
                }
                let lanes: Vec<u32> = tids.iter().map(|&(lane, _)| lane).collect();
                self.locks[*global_warp as usize].on_fence(lanes, *scope);
            }
        }
    }
}
