//! The iGUARD detector: an `nvbit-sim` tool that performs the entire race
//! detection "on the GPU" — i.e., inside the instrumentation callbacks,
//! in parallel with kernel execution, with no CPU-side analysis (§5).
//!
//! Per dynamic global-memory access it:
//! 1. runs lock inference on atomics (§6.3);
//! 2. opportunistically **coalesces** same-address loads/atomics of a warp
//!    split into one metadata operation (§6.5, optimization 1);
//! 3. touches the UVM-backed metadata entry (faults charge cycles, §6.1);
//! 4. charges metadata-lock **contention**, tamed by dynamically-adjusted
//!    exponential backoff (§6.5, optimization 2);
//! 5. updates shared flags, runs the two-tier P/R checks of Table 2, and
//!    writes back the metadata (§6.2, §6.4);
//! 6. reports races to the host buffer without stopping execution (§5).
//!
//! The table-keyed back half of the pipeline (steps 3–5) lives in
//! [`crate::engine::Engine`], shared verbatim with the sharded detector
//! ([`crate::shard::ShardedIguard`]); this type drives it with an inline
//! sink that charges the clock and ships reports immediately.

use std::time::Instant;

use faults::FaultStats;
use gpu_sim::hook::{AccessKind, LaneAccess, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::{AtomOp, Scope, Space};
use gpu_sim::timing::{Clock, CostCategory, Phase};
use nvbit_sim::channel::ChannelStats;
use nvbit_sim::Tool;

use crate::bitfield::AccessorInfo;
use crate::checks::{AccessType, CurrAccess, RaceKind};
use crate::config::IguardConfig;
use crate::engine::{race_index, AccessCtx, Engine, EngineParams, Sink};
use crate::error::IguardError;
use crate::locks::WarpLockState;
use crate::metadata::{MetaStats, MetadataTable, TableConfig, ENTRY_BYTES};
use crate::report::{RaceRecord, RaceReporter, RaceSite};
use crate::syncmeta::SyncMetadata;

/// Aggregate detector counters for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct IguardStats {
    /// Lane-level accesses actually processed (after coalescing).
    pub accesses: u64,
    /// Lane accesses skipped thanks to coalescing.
    pub coalesced_saved: u64,
    /// Hits per preliminary condition P1..P6.
    pub safe_hits: [u64; 6],
    /// Hits per detailed condition R1..R5.
    pub race_hits: [u64; 5],
    /// Accesses that found their metadata entry contended.
    pub contended_accesses: u64,
    /// Serial cycles charged for metadata-lock contention.
    pub contention_cycles: u64,
    /// Serial cycles charged for UVM faults on metadata pages.
    pub uvm_cycles: u64,
    /// Kernel launches observed.
    pub launches: u64,
    /// Accesses whose previous-accessor metadata was lost (capacity
    /// eviction or injected fault) before they could be checked. The
    /// access is still processed — as a first access — so detection
    /// degrades (possible missed race) instead of failing.
    pub missed_checks: u64,
    /// Events received while the detector had no live launch state
    /// (e.g. the metadata table failed to initialize). Dropped, counted.
    pub orphan_events: u64,
    /// Launches that could not allocate the metadata table; the detector
    /// keeps running blind (every access becomes an orphan event).
    pub table_init_failures: u64,
}

/// One-stop degradation summary: everything the detector gave up on,
/// with enough structure to prove each loss is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Checks lost to metadata eviction/aliasing (see [`IguardStats`]).
    pub missed_checks: u64,
    /// Events dropped for lack of launch state.
    pub orphan_events: u64,
    /// Metadata-table allocation failures survived.
    pub table_init_failures: u64,
    /// Per-cause metadata-loss counters.
    pub meta: MetaStats,
    /// Race-report channel accounting (sent / drained / dropped).
    pub channel: ChannelStats,
    /// UVM evictions injected into the metadata region.
    pub uvm_injected_evictions: u64,
    /// Metadata prefaults denied by injected device OOM.
    pub uvm_injected_oom_denials: u64,
}

impl Degradation {
    /// True when every degradation is traceable to a counter: each
    /// metadata-entry loss produced exactly one missed check, and every
    /// record sent on the report channel was either drained or counted
    /// as dropped. The channel half only holds after a full drain
    /// ([`Iguard::races`]); call that first.
    #[must_use]
    pub fn fully_accounted(&self) -> bool {
        self.missed_checks == self.meta.total_evictions()
            && self.channel.sent == self.channel.drained + self.channel.dropped
    }
}

/// The iGUARD race detector.
#[derive(Debug)]
pub struct Iguard {
    cfg: IguardConfig,
    sync: Option<SyncMetadata>,
    locks: Vec<WarpLockState>,
    engine: Engine,
    reporter: RaceReporter,
    stats: IguardStats,
    /// Reusable scratch for the uncoalesced same-entry dedup check, so the
    /// per-split hot path does not heap-allocate.
    scratch_words: Vec<u32>,
    /// Reusable scratch for lock-inference (lane, addr) pairs.
    scratch_pairs: Vec<(u32, u32)>,
}

impl Default for Iguard {
    fn default() -> Self {
        Self::new(IguardConfig::default())
    }
}

/// The serial detector's [`Sink`]: every engine observation becomes an
/// immediate counter increment, clock charge, or reporter send — in
/// exactly the order the pre-refactor monolithic path produced them.
struct SerialSink<'a, 'b> {
    stats: &'a mut IguardStats,
    reporter: &'a mut RaceReporter,
    clock: &'a mut Clock,
    access: &'a MemAccess<'b>,
    lane_access: &'a LaneAccess,
}

impl Sink for SerialSink<'_, '_> {
    fn profiling(&self) -> bool {
        self.clock.profiling()
    }

    fn uvm_ns(&mut self, ns: u64) {
        self.clock.add_phase_ns(Phase::Uvm, ns);
    }

    fn uvm_cycles(&mut self, cycles: u64) {
        self.stats.uvm_cycles += cycles;
        self.clock.charge_serial(CostCategory::Detection, cycles);
    }

    fn missed_check(&mut self) {
        self.stats.missed_checks += 1;
    }

    fn contended(&mut self, cycles: u64) {
        self.stats.contended_accesses += 1;
        self.stats.contention_cycles += cycles;
        self.clock.charge_serial(CostCategory::Detection, cycles);
    }

    fn safe_hit(&mut self, idx: usize) {
        self.stats.safe_hits[idx] += 1;
    }

    fn race(&mut self, kind: RaceKind, curr: &CurrAccess, md_info: AccessorInfo) {
        self.stats.race_hits[race_index(kind)] += 1;
        let record = RaceRecord {
            kernel: self.access.kernel.name.clone(),
            pc: self.access.pc,
            line: self.access.kernel.line(self.access.pc).map(str::to_owned),
            addr: self.lane_access.addr,
            kind,
            access: curr.kind,
            warp: curr.warp_id,
            lane: curr.lane,
            block: curr.block_id,
            prev_warp: md_info.warp_id,
            prev_lane: md_info.lane,
        };
        self.reporter.report(record, self.clock);
    }
}

impl Iguard {
    /// Creates a detector with the given configuration.
    ///
    /// Infallible for ergonomics: a zero report capacity is clamped to 1.
    /// Use [`Iguard::try_new`] to surface configuration errors instead.
    #[must_use]
    pub fn new(mut cfg: IguardConfig) -> Self {
        cfg.report_capacity = cfg.report_capacity.max(1);
        Iguard::try_new(cfg).expect("report capacity clamped to >= 1")
    }

    /// Creates a detector, returning a typed error on an unusable
    /// configuration (e.g. a zero-capacity report buffer).
    pub fn try_new(cfg: IguardConfig) -> Result<Self, IguardError> {
        let reporter = RaceReporter::with_faults(cfg.report_capacity, &cfg.faults)?;
        Ok(Iguard {
            cfg,
            sync: None,
            locks: Vec::new(),
            engine: Engine::default(),
            reporter,
            stats: IguardStats::default(),
            scratch_words: Vec::with_capacity(32),
            scratch_pairs: Vec::with_capacity(32),
        })
    }

    /// Detector counters.
    #[must_use]
    pub fn stats(&self) -> IguardStats {
        self.stats
    }

    /// Everything the detector degraded on, with per-cause accounting.
    #[must_use]
    pub fn degradation(&self) -> Degradation {
        let meta = self
            .engine
            .table
            .as_ref()
            .map(MetadataTable::meta_stats)
            .unwrap_or_default();
        let uvm = self.uvm_stats();
        Degradation {
            missed_checks: self.stats.missed_checks,
            orphan_events: self.stats.orphan_events,
            table_init_failures: self.stats.table_init_failures,
            meta,
            channel: self.reporter.channel_stats(),
            uvm_injected_evictions: uvm.injected_evictions,
            uvm_injected_oom_denials: uvm.injected_oom_denials,
        }
    }

    /// Aggregated injected-fault counters across the detector's
    /// components (metadata table, its UVM region, report channel).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self.reporter.fault_stats();
        if let Some(t) = &self.engine.table {
            total.accumulate(&t.fault_stats());
        }
        total
    }

    /// Race-report channel accounting.
    #[must_use]
    pub fn channel_stats(&self) -> ChannelStats {
        self.reporter.channel_stats()
    }

    /// UVM statistics of the metadata region (empty before first launch).
    #[must_use]
    pub fn uvm_stats(&self) -> uvm_sim::UvmStats {
        self.engine
            .table
            .as_ref()
            .map(MetadataTable::uvm_stats)
            .unwrap_or_default()
    }

    /// Number of unique races detected so far.
    #[must_use]
    pub fn unique_races(&self) -> usize {
        self.reporter.unique_races()
    }

    /// Dynamic race occurrences (before deduplication).
    #[must_use]
    pub fn dynamic_races(&self) -> u64 {
        self.reporter.dynamic_races
    }

    /// Drains all shipped race reports.
    pub fn races(&mut self) -> Vec<RaceRecord> {
        self.reporter.drain()
    }

    /// Drains reports grouped into distinct sites (the Table 4 unit).
    pub fn race_sites(&mut self) -> Vec<RaceSite> {
        let records = self.reporter.drain();
        crate::report::group_sites(&records)
    }

    /// The per-access detection pipeline (§6.2, §6.4).
    ///
    /// Cycle charges for the data-parallel part of the check happen once
    /// per warp split in [`Tool::on_mem`] (the injected device function
    /// runs on the SIMD unit, all lanes in parallel); the engine-driven
    /// part charges only the *serializing* components — UVM faults and
    /// metadata-lock contention.
    fn process_access(
        &mut self,
        lane_access: &LaneAccess,
        kind: AccessType,
        access: &MemAccess<'_>,
        clock: &mut Clock,
    ) {
        // Graceful degradation: an access with no live launch state
        // (table allocation failed, or the event arrived before any
        // launch) is dropped and counted instead of panicking.
        if self.engine.table.is_none() || self.sync.is_none() || self.locks.is_empty() {
            self.stats.orphan_events += 1;
            return;
        }
        self.stats.accesses += 1;

        let warp = access.global_warp;
        let lane = lane_access.lane;
        let sync = self.sync.as_ref().expect("guarded above");
        let ctx = AccessCtx {
            word: lane_access.addr / 4,
            warp,
            lane,
            block: access.block_id,
            wpb: access.warps_per_block,
            step: access.step,
            active_mask: access.active_mask,
            kind,
            snap: sync.snapshot(warp, lane),
            lock_summary: self.locks[warp as usize].summary(lane),
        };
        let mut sink = SerialSink {
            stats: &mut self.stats,
            reporter: &mut self.reporter,
            clock,
            access,
            lane_access,
        };
        self.engine.process(&ctx, sync, &mut sink);
    }
}

impl Tool for Iguard {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.stats.launches += 1;
        let window = if self.cfg.contention_window > 0 {
            self.cfg.contention_window
        } else {
            64.max(u64::from(info.total_warps))
        };
        self.sync = Some(SyncMetadata::new(info.grid_dim, info.warps_per_block));
        self.locks = vec![WarpLockState::default(); info.total_warps as usize];
        self.engine.begin_launch(
            info.backing_words,
            info.total_warps,
            window,
            EngineParams {
                backoff: self.cfg.backoff,
                contention_base: self.cfg.contention_base,
                its_support: self.cfg.its_support,
                history_depth: self.cfg.history_depth,
            },
        );

        match &mut self.engine.table {
            Some(table) => table.begin_epoch(),
            None => {
                // First launch: allocate the managed metadata region sized
                // at ~4× device capacity (§6.1) and prefault what fits.
                let virtual_bytes = 4 * info.device_capacity_bytes;
                match MetadataTable::new(TableConfig {
                    words: info.backing_words,
                    uvm: self.cfg.uvm.clone(),
                    virtual_bytes,
                    device_budget_bytes: info.free_device_bytes,
                    addr_scale: self.cfg.addr_scale,
                    capacity_words: self.cfg.table_capacity_words,
                    faults: self.cfg.faults.clone(),
                }) {
                    Ok(mut table) => {
                        let mut setup = self.cfg.setup_fixed_cost;
                        if self.cfg.prefault {
                            // Metadata is 4x the data it shadows (Sec 6.1);
                            // prefault as much of it as free device memory
                            // allows.
                            let needed = info.app_footprint_bytes.saturating_mul(4);
                            setup += table.prefault(needed.max(ENTRY_BYTES));
                        }
                        clock.charge_serial(CostCategory::Setup, setup);
                        self.engine.table = Some(table);
                    }
                    Err(_) => {
                        // Degrade instead of crashing the launch: run blind
                        // for this process and count every dropped event.
                        self.stats.table_init_failures += 1;
                    }
                }
            }
        }
        clock.charge_serial(CostCategory::Misc, self.cfg.misc_cost_per_launch);
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        // iGUARD proper watches global memory only (§4: scratchpad races
        // are prior tools' domain; see `crate::scratchpad` for that
        // extension).
        if access.space != Space::Global {
            return;
        }
        let t0 = clock.profiling().then(Instant::now);
        self.on_global_mem(access, clock);
        if let Some(t) = t0 {
            clock.add_phase_ns(Phase::Detect, t.elapsed().as_nanos() as u64);
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        clock.charge(CostCategory::Detection, 4);
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                if let Some(s) = self.sync.as_mut() {
                    s.block_barrier(*block_id);
                }
            }
            SyncEvent::WarpBarrier { global_warp, .. } => {
                if let Some(s) = self.sync.as_mut() {
                    s.warp_barrier(*global_warp);
                }
            }
            SyncEvent::Fence {
                scope,
                global_warp,
                tids,
                ..
            } => {
                let Some(sync) = self.sync.as_mut() else {
                    self.stats.orphan_events += 1;
                    return;
                };
                for &(lane, _tid) in tids.iter() {
                    sync.fence(*scope, *global_warp, lane);
                }
                let lanes: Vec<u32> = tids.iter().map(|&(lane, _)| lane).collect();
                if let Some(wl) = self.locks.get_mut(*global_warp as usize) {
                    wl.on_fence(lanes, *scope);
                }
            }
        }
    }
}

impl Iguard {
    /// The global-memory half of [`Tool::on_mem`], separated so the wrapper
    /// can attribute its wall time to [`Phase::Detect`].
    fn on_global_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        let kind = match access.kind {
            AccessKind::Load => AccessType::Load,
            // A volatile word store is hardware-atomic and L1-bypassing —
            // the publication half of a flag protocol. Classify it as a
            // relaxed device-scope atomic write so flag polling (covered
            // by the P6 extensions) does not manufacture races.
            AccessKind::Store if access.volatile => AccessType::Atomic { scope_block: false },
            AccessKind::Store => AccessType::Store,
            AccessKind::Atomic { op, scope } => {
                // Lock inference (§6.3) happens before race checking.
                if matches!(op, AtomOp::Cas | AtomOp::Exch) {
                    let wl = &mut self.locks[access.global_warp as usize];
                    if let [l] = access.lanes {
                        // 1-lane split (the common case for lock CASes
                        // under ITS): skip the scratch fill entirely.
                        let pair = [(l.lane, l.addr)];
                        match op {
                            AtomOp::Cas => wl.on_cas(&pair, scope),
                            AtomOp::Exch => wl.on_exch(&pair, scope),
                            _ => unreachable!("matched above"),
                        }
                    } else {
                        // `scratch_pairs` keeps its capacity across splits
                        // and launches; 32 lanes always fit, so this never
                        // reallocates.
                        self.scratch_pairs.clear();
                        self.scratch_pairs
                            .extend(access.lanes.iter().map(|l| (l.lane, l.addr)));
                        match op {
                            AtomOp::Cas => wl.on_cas(&self.scratch_pairs, scope),
                            AtomOp::Exch => wl.on_exch(&self.scratch_pairs, scope),
                            _ => unreachable!("matched above"),
                        }
                    }
                }
                AccessType::Atomic {
                    scope_block: scope == Scope::Block,
                }
            }
        };

        // The injected check runs data-parallel across the split's lanes:
        // one SIMD issue worth of check + (uncontended) metadata lock.
        clock.charge(
            CostCategory::Detection,
            self.cfg.check_cost + self.cfg.md_lock_cost,
        );

        // §6.5 optimization 1: same-address loads/atomics of the active
        // lanes cannot race with each other — one lane checks for all.
        let coalescible = self.cfg.coalescing
            && !matches!(kind, AccessType::Store)
            && access.lanes.len() > 1
            && access.lanes.iter().all(|l| l.addr == access.lanes[0].addr);
        if coalescible {
            self.stats.coalesced_saved += access.lanes.len() as u64 - 1;
            let rep = access.lanes[0];
            self.process_access(&rep, kind, access, clock);
        } else {
            // Lanes hitting the *same* metadata entry serialize on its
            // lock; lanes on distinct entries proceed in parallel. Charge
            // the intra-warp serialization the coalescing optimization
            // exists to remove.
            if access.lanes.len() > 1 {
                self.scratch_words.clear();
                self.scratch_words
                    .extend(access.lanes.iter().map(|l| l.addr / 4));
                self.scratch_words.sort_unstable();
                self.scratch_words.dedup();
                let dup = access.lanes.len() - self.scratch_words.len();
                if dup > 0 {
                    clock.charge(
                        CostCategory::Detection,
                        dup as u64 * (self.cfg.check_cost + self.cfg.md_lock_cost),
                    );
                }
            }
            for i in 0..access.lanes.len() {
                let la = access.lanes[i];
                self.process_access(&la, kind, access, clock);
            }
        }
    }
}
