//! The iGUARD detector: an `nvbit-sim` tool that performs the entire race
//! detection "on the GPU" — i.e., inside the instrumentation callbacks,
//! in parallel with kernel execution, with no CPU-side analysis (§5).
//!
//! Per dynamic global-memory access it:
//! 1. runs lock inference on atomics (§6.3);
//! 2. opportunistically **coalesces** same-address loads/atomics of a warp
//!    split into one metadata operation (§6.5, optimization 1);
//! 3. touches the UVM-backed metadata entry (faults charge cycles, §6.1);
//! 4. charges metadata-lock **contention**, tamed by dynamically-adjusted
//!    exponential backoff (§6.5, optimization 2);
//! 5. updates shared flags, runs the two-tier P/R checks of Table 2, and
//!    writes back the metadata (§6.2, §6.4);
//! 6. reports races to the host buffer without stopping execution (§5).

use std::time::Instant;

use faults::FaultStats;
use gpu_sim::hook::{AccessKind, LaneAccess, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::{AtomOp, Scope, Space};
use gpu_sim::timing::{Clock, CostCategory, Phase};
use nvbit_sim::channel::ChannelStats;
use nvbit_sim::Tool;

use crate::bitfield::{AccessorInfo, MetadataEntry};
use crate::checks::{detailed, preliminary, AccessType, CurrAccess, MdView, RaceKind, Safe};
use crate::config::IguardConfig;
use crate::error::IguardError;
use crate::locks::WarpLockState;
use crate::metadata::{MetaStats, MetadataTable, TableConfig, ENTRY_BYTES};
use crate::report::{RaceRecord, RaceReporter, RaceSite};
use crate::syncmeta::SyncMetadata;

/// Aggregate detector counters for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct IguardStats {
    /// Lane-level accesses actually processed (after coalescing).
    pub accesses: u64,
    /// Lane accesses skipped thanks to coalescing.
    pub coalesced_saved: u64,
    /// Hits per preliminary condition P1..P6.
    pub safe_hits: [u64; 6],
    /// Hits per detailed condition R1..R5.
    pub race_hits: [u64; 5],
    /// Accesses that found their metadata entry contended.
    pub contended_accesses: u64,
    /// Serial cycles charged for metadata-lock contention.
    pub contention_cycles: u64,
    /// Serial cycles charged for UVM faults on metadata pages.
    pub uvm_cycles: u64,
    /// Kernel launches observed.
    pub launches: u64,
    /// Accesses whose previous-accessor metadata was lost (capacity
    /// eviction or injected fault) before they could be checked. The
    /// access is still processed — as a first access — so detection
    /// degrades (possible missed race) instead of failing.
    pub missed_checks: u64,
    /// Events received while the detector had no live launch state
    /// (e.g. the metadata table failed to initialize). Dropped, counted.
    pub orphan_events: u64,
    /// Launches that could not allocate the metadata table; the detector
    /// keeps running blind (every access becomes an orphan event).
    pub table_init_failures: u64,
}

/// One-stop degradation summary: everything the detector gave up on,
/// with enough structure to prove each loss is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Checks lost to metadata eviction/aliasing (see [`IguardStats`]).
    pub missed_checks: u64,
    /// Events dropped for lack of launch state.
    pub orphan_events: u64,
    /// Metadata-table allocation failures survived.
    pub table_init_failures: u64,
    /// Per-cause metadata-loss counters.
    pub meta: MetaStats,
    /// Race-report channel accounting (sent / drained / dropped).
    pub channel: ChannelStats,
    /// UVM evictions injected into the metadata region.
    pub uvm_injected_evictions: u64,
    /// Metadata prefaults denied by injected device OOM.
    pub uvm_injected_oom_denials: u64,
}

impl Degradation {
    /// True when every degradation is traceable to a counter: each
    /// metadata-entry loss produced exactly one missed check, and every
    /// record sent on the report channel was either drained or counted
    /// as dropped. The channel half only holds after a full drain
    /// ([`Iguard::races`]); call that first.
    #[must_use]
    pub fn fully_accounted(&self) -> bool {
        self.missed_checks == self.meta.total_evictions()
            && self.channel.sent == self.channel.drained + self.channel.dropped
    }
}

/// Capacity of the inline history ring; the §6.7 ablation tops out at
/// depth 8, and [`HistoryTable`] clamps deeper configurations to it.
const HISTORY_RING: usize = 8;

/// Flat, epoch-invalidated per-word contention state.
///
/// Indexed by metadata word exactly like `MetadataTable` (power-of-two
/// capacity ≥ the backing words, so every in-bounds word index maps
/// injectively to its own slot): a slot whose epoch is stale reads as the
/// zeroed default the old `HashMap::entry(word).or_default()` produced,
/// so the replacement is behaviour-identical while removing hashing and
/// allocation from the per-access path. Backing vectors are zero-filled
/// allocations, so untouched slots never cost physical pages.
#[derive(Debug, Default)]
struct ContentionTable {
    mask: usize,
    epoch: u32,
    slot_epoch: Vec<u32>,
    last_step: Vec<u64>,
    last_warp: Vec<u32>,
    streak: Vec<u32>,
}

impl ContentionTable {
    /// Sets the slot mask for `words` and invalidates every slot (the old
    /// per-launch `HashMap::clear`), without touching the backing pages.
    /// Storage itself grows lazily (see [`ContentionTable::ensure`]).
    fn begin_launch(&mut self, words: usize) {
        let cap = words.next_power_of_two();
        self.mask = cap - 1;
        if self.epoch == 0 {
            self.epoch = 1;
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The 32-bit epoch wrapped: stale slots could masquerade as
            // live, so pay one real clear every 2^32 launches.
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Grows the slot arrays to cover `slot`. The mapping is identity
    /// for in-range words, so growing to the touched high-water mark is
    /// equivalent to full preallocation — without zeroing tens of
    /// megabytes per detector for the device's whole address space.
    /// Fresh slots get epoch 0, which never equals the live epoch.
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.slot_epoch.len() {
            let n = (slot + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.last_step.resize(n, 0);
            self.last_warp.resize(n, 0);
            self.streak.resize(n, 0);
        }
    }

    /// Applies the streak update for one access and returns the updated
    /// streak (the state machine of `charge_contention`, unchanged).
    fn update(&mut self, word: u32, warp: u32, step: u64, window: u64) -> u32 {
        let slot = word as usize & self.mask;
        self.ensure(slot);
        let (last_step, last_warp, mut streak) = if self.slot_epoch[slot] == self.epoch {
            (self.last_step[slot], self.last_warp[slot], self.streak[slot])
        } else {
            (0, 0, 0)
        };
        let close = step.saturating_sub(last_step) <= window;
        if close && last_warp != warp {
            streak = streak.saturating_add(1);
        } else if !close {
            streak = 1;
        }
        self.slot_epoch[slot] = self.epoch;
        self.last_step[slot] = step;
        self.last_warp[slot] = warp;
        self.streak[slot] = streak;
        streak
    }
}

/// Flat fixed-capacity history rings (§6.7 ablation depths > 1), indexed
/// like [`ContentionTable`] and invalidated the same way. Replaces the
/// old `HashMap<u32, VecDeque<HistRecord>>`: per-word rings of at most
/// [`HISTORY_RING`] records live inline in flat arrays, so pushing a
/// record allocates nothing. Records store the accessor identity
/// losslessly (unlike the packed 16-byte entry, whose fields truncate).
#[derive(Debug, Default)]
struct HistoryTable {
    /// Records kept per word: `min(cfg.history_depth, HISTORY_RING)`.
    /// `<= 1` disables the table (the entry itself is depth-1 history).
    depth: usize,
    mask: usize,
    epoch: u32,
    slot_epoch: Vec<u32>,
    /// Per-slot ring control: `head << 4 | len` (both fit: depth ≤ 8).
    ctl: Vec<u8>,
    /// Per-record identity: `warp_id << 32 | lane`.
    id: Vec<u64>,
    /// Per-record sync counters, one byte each:
    /// `dev_fence | blk_fence << 8 | blk_bar << 16 | warp_bar << 24`.
    sync: Vec<u32>,
    /// Per-record lock Bloom summary.
    locks: Vec<u16>,
}

impl HistoryTable {
    fn begin_launch(&mut self, words: usize, configured_depth: usize) {
        self.depth = configured_depth.min(HISTORY_RING);
        if self.depth <= 1 {
            return;
        }
        let cap = words.next_power_of_two();
        self.mask = cap - 1;
        if self.epoch == 0 {
            self.epoch = 1;
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Grows the slot and record arrays to cover `slot` — same lazy
    /// high-water scheme as [`ContentionTable::ensure`] (the record
    /// arrays are `HISTORY_RING` entries per slot, so eager sizing
    /// would be hundreds of megabytes at device scale).
    #[inline]
    fn ensure(&mut self, slot: usize) {
        if slot >= self.slot_epoch.len() {
            let n = (slot + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.ctl.resize(n, 0);
            self.id.resize(n * HISTORY_RING, 0);
            self.sync.resize(n * HISTORY_RING, 0);
            self.locks.resize(n * HISTORY_RING, 0);
        }
    }

    /// Appends a record, evicting the oldest once the ring is full (the
    /// old `push_back` + trim-to-depth).
    fn push(&mut self, word: u32, info: AccessorInfo, locks: u16) {
        let slot = word as usize & self.mask;
        self.ensure(slot);
        let (mut head, mut len) = if self.slot_epoch[slot] == self.epoch {
            let c = self.ctl[slot];
            ((c >> 4) as usize, (c & 0xF) as usize)
        } else {
            (0, 0)
        };
        let pos = if len == self.depth {
            let oldest = head;
            head = (head + 1) % self.depth;
            oldest
        } else {
            let p = (head + len) % self.depth;
            len += 1;
            p
        };
        let at = slot * HISTORY_RING + pos;
        self.id[at] = (u64::from(info.warp_id) << 32) | u64::from(info.lane);
        self.sync[at] = u32::from(info.dev_fence)
            | (u32::from(info.blk_fence) << 8)
            | (u32::from(info.blk_bar) << 16)
            | (u32::from(info.warp_bar) << 24);
        self.locks[at] = locks;
        self.slot_epoch[slot] = self.epoch;
        self.ctl[slot] = ((head as u8) << 4) | len as u8;
    }

    /// Yields `word`'s records newest-first, skipping the newest (which
    /// duplicates the entry's own accessor) — the `iter().rev().skip(1)`
    /// order of the old `VecDeque`.
    fn rev_skip_newest(&self, word: u32) -> impl Iterator<Item = (AccessorInfo, u16)> + '_ {
        let slot = word as usize & self.mask;
        let (head, len) = if self.depth > 1 && self.slot_epoch.get(slot) == Some(&self.epoch) {
            let c = self.ctl[slot];
            ((c >> 4) as usize, (c & 0xF) as usize)
        } else {
            (0, 0)
        };
        (0..len.saturating_sub(1)).rev().map(move |i| {
            let at = slot * HISTORY_RING + (head + i) % self.depth;
            let id = self.id[at];
            let sync = self.sync[at];
            let info = AccessorInfo {
                warp_id: (id >> 32) as u32,
                lane: id as u32,
                dev_fence: sync as u8,
                blk_fence: (sync >> 8) as u8,
                blk_bar: (sync >> 16) as u8,
                warp_bar: (sync >> 24) as u8,
            };
            (info, self.locks[at])
        })
    }
}

/// The iGUARD race detector.
#[derive(Debug)]
pub struct Iguard {
    cfg: IguardConfig,
    sync: Option<SyncMetadata>,
    locks: Vec<WarpLockState>,
    table: Option<MetadataTable>,
    reporter: RaceReporter,
    contention: ContentionTable,
    history: HistoryTable,
    stats: IguardStats,
    total_warps: u32,
    window: u64,
    /// Reusable scratch for the uncoalesced same-entry dedup check, so the
    /// per-split hot path does not heap-allocate.
    scratch_words: Vec<u32>,
    /// Reusable scratch for lock-inference (lane, addr) pairs.
    scratch_pairs: Vec<(u32, u32)>,
}

impl Default for Iguard {
    fn default() -> Self {
        Self::new(IguardConfig::default())
    }
}

impl Iguard {
    /// Creates a detector with the given configuration.
    ///
    /// Infallible for ergonomics: a zero report capacity is clamped to 1.
    /// Use [`Iguard::try_new`] to surface configuration errors instead.
    #[must_use]
    pub fn new(mut cfg: IguardConfig) -> Self {
        cfg.report_capacity = cfg.report_capacity.max(1);
        Iguard::try_new(cfg).expect("report capacity clamped to >= 1")
    }

    /// Creates a detector, returning a typed error on an unusable
    /// configuration (e.g. a zero-capacity report buffer).
    pub fn try_new(cfg: IguardConfig) -> Result<Self, IguardError> {
        let reporter = RaceReporter::with_faults(cfg.report_capacity, &cfg.faults)?;
        Ok(Iguard {
            cfg,
            sync: None,
            locks: Vec::new(),
            table: None,
            reporter,
            contention: ContentionTable::default(),
            history: HistoryTable::default(),
            stats: IguardStats::default(),
            total_warps: 0,
            window: 64,
            scratch_words: Vec::with_capacity(32),
            scratch_pairs: Vec::with_capacity(32),
        })
    }

    /// Detector counters.
    #[must_use]
    pub fn stats(&self) -> IguardStats {
        self.stats
    }

    /// Everything the detector degraded on, with per-cause accounting.
    #[must_use]
    pub fn degradation(&self) -> Degradation {
        let meta = self
            .table
            .as_ref()
            .map(MetadataTable::meta_stats)
            .unwrap_or_default();
        let uvm = self.uvm_stats();
        Degradation {
            missed_checks: self.stats.missed_checks,
            orphan_events: self.stats.orphan_events,
            table_init_failures: self.stats.table_init_failures,
            meta,
            channel: self.reporter.channel_stats(),
            uvm_injected_evictions: uvm.injected_evictions,
            uvm_injected_oom_denials: uvm.injected_oom_denials,
        }
    }

    /// Aggregated injected-fault counters across the detector's
    /// components (metadata table, its UVM region, report channel).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = self.reporter.fault_stats();
        if let Some(t) = &self.table {
            total.accumulate(&t.fault_stats());
        }
        total
    }

    /// Race-report channel accounting.
    #[must_use]
    pub fn channel_stats(&self) -> ChannelStats {
        self.reporter.channel_stats()
    }

    /// UVM statistics of the metadata region (empty before first launch).
    #[must_use]
    pub fn uvm_stats(&self) -> uvm_sim::UvmStats {
        self.table
            .as_ref()
            .map(MetadataTable::uvm_stats)
            .unwrap_or_default()
    }

    /// Number of unique races detected so far.
    #[must_use]
    pub fn unique_races(&self) -> usize {
        self.reporter.unique_races()
    }

    /// Dynamic race occurrences (before deduplication).
    #[must_use]
    pub fn dynamic_races(&self) -> u64 {
        self.reporter.dynamic_races
    }

    /// Drains all shipped race reports.
    pub fn races(&mut self) -> Vec<RaceRecord> {
        self.reporter.drain()
    }

    /// Drains reports grouped into distinct sites (the Table 4 unit).
    pub fn race_sites(&mut self) -> Vec<RaceSite> {
        let records = self.reporter.drain();
        crate::report::group_sites(&records)
    }

    fn sync(&self) -> &SyncMetadata {
        self.sync
            .as_ref()
            .expect("detector received access before launch")
    }

    /// Charges metadata-lock serialization for one access to `word` and
    /// returns nothing; the model is described in DESIGN.md §4: a streak of
    /// temporally-close accesses to the same entry by different warps
    /// approximates the number of contenders for the entry's lock.
    fn charge_contention(&mut self, word: u32, warp: u32, step: u64, clock: &mut Clock) {
        let streak = self.contention.update(word, warp, step, self.window);
        if streak > 1 {
            self.stats.contended_accesses += 1;
            let cycles = if self.cfg.backoff {
                // Dynamically-adjusted exponential backoff: contenders
                // spread out and hand the lock off cleanly, so each pays
                // roughly one critical section of serialization.
                self.cfg.contention_base
            } else {
                // Unmitigated CAS hammering: every retry burns memory
                // bandwidth and delays the holder, so the per-access waste
                // grows with the number of concurrent contenders.
                2 * u64::from(streak.min(96))
            };
            self.stats.contention_cycles += cycles;
            clock.charge_serial(CostCategory::Detection, cycles);
        }
    }

    /// The per-access detection pipeline (§6.2, §6.4).
    ///
    /// Cycle charges for the data-parallel part of the check happen once
    /// per warp split in [`Tool::on_mem`] (the injected device function
    /// runs on the SIMD unit, all lanes in parallel); this method charges
    /// only the *serializing* components — UVM faults and metadata-lock
    /// contention.
    #[allow(clippy::too_many_arguments)]
    fn process_access(
        &mut self,
        lane_access: &LaneAccess,
        kind: AccessType,
        access: &MemAccess<'_>,
        clock: &mut Clock,
    ) {
        // Graceful degradation: an access with no live launch state
        // (table allocation failed, or the event arrived before any
        // launch) is dropped and counted instead of panicking.
        if self.table.is_none() || self.sync.is_none() || self.locks.is_empty() {
            self.stats.orphan_events += 1;
            return;
        }
        self.stats.accesses += 1;

        let word = lane_access.addr / 4;
        let warp = access.global_warp;
        let lane = lane_access.lane;
        let block = access.block_id;
        let wpb = access.warps_per_block;

        // Metadata lookup: UVM touch + contention serialization.
        let t0 = clock.profiling().then(Instant::now);
        let loaded = self.table.as_mut().expect("guarded above").load(word);
        if let Some(t) = t0 {
            clock.add_phase_ns(Phase::Uvm, t.elapsed().as_nanos() as u64);
        }
        if loaded.uvm_cycles > 0 {
            self.stats.uvm_cycles += loaded.uvm_cycles;
            clock.charge_serial(CostCategory::Detection, loaded.uvm_cycles);
        }
        if loaded.evicted {
            // The entry's previous accessor was forgotten (capacity
            // pressure or injected fault): the check below degenerates to
            // a first access, so a race could slip by — count it.
            self.stats.missed_checks += 1;
        }
        self.charge_contention(word, warp, access.step, clock);

        let mut entry = loaded.entry;
        let snap = self.sync().snapshot(warp, lane);
        let lock_summary = self.locks[warp as usize].summary(lane);

        if !entry.flags.valid {
            // P1: first access.
            self.stats.safe_hits[0] += 1;
            entry.flags.valid = true;
            entry.accessor = snap;
            if kind.is_write() {
                entry.writer = snap;
                entry.locks = lock_summary;
                entry.flags.modified = true;
                if let AccessType::Atomic { scope_block } = kind {
                    entry.flags.atomic = true;
                    entry.flags.scope_block = scope_block;
                }
            }
            self.push_history(word, snap, lock_summary);
            self.table.as_mut().expect("guarded above").store(word, entry);
            return;
        }

        // Shared-flag update precedes the checks (§6.2).
        let last_block = entry.accessor.block_id(wpb);
        if last_block != block {
            entry.flags.dev_shared = true;
        } else if entry.accessor.warp_id != warp {
            entry.flags.blk_shared = true;
        }

        let md_info = if kind.is_write() {
            entry.accessor
        } else {
            entry.writer
        };
        let md = self.md_view(md_info);
        let mut curr = CurrAccess {
            kind,
            warp_id: warp,
            lane,
            block_id: block,
            active_mask: access.active_mask,
            snap,
            locks: lock_summary,
        };
        if !self.cfg.its_support && md_info.warp_id == warp {
            // ScoRD mode: the detector predates ITS and assumes lockstep
            // warps -- same-warp accesses are always treated as converged,
            // which is exactly why ScoRD misses ITS races (Sec 4).
            curr.active_mask |= 1 << md_info.lane;
        }

        match preliminary(&entry, &md, &curr, wpb) {
            Some(safe) => {
                let idx = match safe {
                    Safe::FirstAccess => 0,
                    Safe::NoWrite => 1,
                    Safe::ProgramOrder => 2,
                    Safe::WarpSynced => 3,
                    Safe::Barrier => 4,
                    Safe::SafeAtomic => 5,
                };
                self.stats.safe_hits[idx] += 1;
            }
            None => {
                let mut verdict = detailed(&entry, &md, &curr, wpb);
                // §6.7 ablation: with deeper history, also check against
                // older accessors that the 16-byte entry has forgotten.
                if verdict.is_none() && self.cfg.history_depth > 1 {
                    verdict = self.check_history(word, &entry, &curr, wpb);
                }
                if let Some(kind_found) = verdict {
                    self.record_race(kind_found, &curr, access, lane_access, md_info, clock);
                }
            }
        }

        // Metadata write-back: identity + synchronization of the accessor,
        // and of the writer for writes (§6.2).
        entry.accessor = snap;
        if kind.is_write() {
            entry.writer = snap;
            entry.locks = lock_summary;
            entry.flags.modified = true;
            if let AccessType::Atomic { scope_block } = kind {
                entry.flags.atomic = true;
                entry.flags.scope_block = scope_block;
            } else {
                // A plain store supersedes the atomic history of the
                // location: P6 must not treat a plain last-write as a safe
                // atomic (engineering choice documented in DESIGN.md).
                entry.flags.atomic = false;
                entry.flags.scope_block = false;
            }
        }
        self.push_history(word, snap, lock_summary);
        self.table.as_mut().expect("guarded above").store(word, entry);
    }

    fn md_view(&self, info: AccessorInfo) -> MdView {
        let sync = self.sync();
        // Identity is only meaningful within the current launch epoch; a
        // wrapped WarpID outside the grid falls back to stored counters.
        if info.warp_id < self.total_warps {
            MdView {
                info,
                live_dev_fence: sync.dev_fence(info.warp_id, info.lane),
                live_blk_fence: sync.blk_fence(info.warp_id, info.lane),
            }
        } else {
            MdView {
                info,
                live_dev_fence: info.dev_fence,
                live_blk_fence: info.blk_fence,
            }
        }
    }

    fn push_history(&mut self, word: u32, info: AccessorInfo, locks: u16) {
        if self.history.depth <= 1 {
            return;
        }
        self.history.push(word, info, locks);
    }

    fn check_history(
        &self,
        word: u32,
        entry: &MetadataEntry,
        curr: &CurrAccess,
        wpb: u32,
    ) -> Option<RaceKind> {
        for (info, locks) in self.history.rev_skip_newest(word) {
            let md = self.md_view(info);
            let mut shadow = *entry;
            shadow.locks = locks;
            if preliminary(&shadow, &md, curr, wpb).is_none() {
                if let Some(kind) = detailed(&shadow, &md, curr, wpb) {
                    return Some(kind);
                }
            }
        }
        None
    }

    fn record_race(
        &mut self,
        kind: RaceKind,
        curr: &CurrAccess,
        access: &MemAccess<'_>,
        lane_access: &LaneAccess,
        md_info: AccessorInfo,
        clock: &mut Clock,
    ) {
        let idx = match kind {
            RaceKind::AtomicScope => 0,
            RaceKind::IntraWarp => 1,
            RaceKind::IntraBlock => 2,
            RaceKind::InterBlock => 3,
            RaceKind::Locking => 4,
        };
        self.stats.race_hits[idx] += 1;
        let record = RaceRecord {
            kernel: access.kernel.name.clone(),
            pc: access.pc,
            line: access.kernel.line(access.pc).map(str::to_owned),
            addr: lane_access.addr,
            kind,
            access: curr.kind,
            warp: curr.warp_id,
            lane: curr.lane,
            block: curr.block_id,
            prev_warp: md_info.warp_id,
            prev_lane: md_info.lane,
        };
        self.reporter.report(record, clock);
    }
}

impl Tool for Iguard {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.stats.launches += 1;
        self.total_warps = info.total_warps;
        self.window = if self.cfg.contention_window > 0 {
            self.cfg.contention_window
        } else {
            64.max(u64::from(info.total_warps))
        };
        self.sync = Some(SyncMetadata::new(info.grid_dim, info.warps_per_block));
        self.locks = vec![WarpLockState::default(); info.total_warps as usize];
        self.contention.begin_launch(info.backing_words);
        self.history
            .begin_launch(info.backing_words, self.cfg.history_depth);

        match &mut self.table {
            Some(table) => table.begin_epoch(),
            None => {
                // First launch: allocate the managed metadata region sized
                // at ~4× device capacity (§6.1) and prefault what fits.
                let virtual_bytes = 4 * info.device_capacity_bytes;
                match MetadataTable::new(TableConfig {
                    words: info.backing_words,
                    uvm: self.cfg.uvm.clone(),
                    virtual_bytes,
                    device_budget_bytes: info.free_device_bytes,
                    addr_scale: self.cfg.addr_scale,
                    capacity_words: self.cfg.table_capacity_words,
                    faults: self.cfg.faults.clone(),
                }) {
                    Ok(mut table) => {
                        let mut setup = self.cfg.setup_fixed_cost;
                        if self.cfg.prefault {
                            // Metadata is 4x the data it shadows (Sec 6.1);
                            // prefault as much of it as free device memory
                            // allows.
                            let needed = info.app_footprint_bytes.saturating_mul(4);
                            setup += table.prefault(needed.max(ENTRY_BYTES));
                        }
                        clock.charge_serial(CostCategory::Setup, setup);
                        self.table = Some(table);
                    }
                    Err(_) => {
                        // Degrade instead of crashing the launch: run blind
                        // for this process and count every dropped event.
                        self.stats.table_init_failures += 1;
                    }
                }
            }
        }
        clock.charge_serial(CostCategory::Misc, self.cfg.misc_cost_per_launch);
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        // iGUARD proper watches global memory only (§4: scratchpad races
        // are prior tools' domain; see `crate::scratchpad` for that
        // extension).
        if access.space != Space::Global {
            return;
        }
        let t0 = clock.profiling().then(Instant::now);
        self.on_global_mem(access, clock);
        if let Some(t) = t0 {
            clock.add_phase_ns(Phase::Detect, t.elapsed().as_nanos() as u64);
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        clock.charge(CostCategory::Detection, 4);
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                if let Some(s) = self.sync.as_mut() {
                    s.block_barrier(*block_id);
                }
            }
            SyncEvent::WarpBarrier { global_warp, .. } => {
                if let Some(s) = self.sync.as_mut() {
                    s.warp_barrier(*global_warp);
                }
            }
            SyncEvent::Fence {
                scope,
                global_warp,
                tids,
                ..
            } => {
                let Some(sync) = self.sync.as_mut() else {
                    self.stats.orphan_events += 1;
                    return;
                };
                for &(lane, _tid) in tids.iter() {
                    sync.fence(*scope, *global_warp, lane);
                }
                let lanes: Vec<u32> = tids.iter().map(|&(lane, _)| lane).collect();
                if let Some(wl) = self.locks.get_mut(*global_warp as usize) {
                    wl.on_fence(lanes, *scope);
                }
            }
        }
    }
}

impl Iguard {
    /// The global-memory half of [`Tool::on_mem`], separated so the wrapper
    /// can attribute its wall time to [`Phase::Detect`].
    fn on_global_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        let kind = match access.kind {
            AccessKind::Load => AccessType::Load,
            // A volatile word store is hardware-atomic and L1-bypassing —
            // the publication half of a flag protocol. Classify it as a
            // relaxed device-scope atomic write so flag polling (covered
            // by the P6 extensions) does not manufacture races.
            AccessKind::Store if access.volatile => AccessType::Atomic { scope_block: false },
            AccessKind::Store => AccessType::Store,
            AccessKind::Atomic { op, scope } => {
                // Lock inference (§6.3) happens before race checking.
                if matches!(op, AtomOp::Cas | AtomOp::Exch) {
                    let wl = &mut self.locks[access.global_warp as usize];
                    if let [l] = access.lanes {
                        // 1-lane split (the common case for lock CASes
                        // under ITS): skip the scratch fill entirely.
                        let pair = [(l.lane, l.addr)];
                        match op {
                            AtomOp::Cas => wl.on_cas(&pair, scope),
                            AtomOp::Exch => wl.on_exch(&pair, scope),
                            _ => unreachable!("matched above"),
                        }
                    } else {
                        // `scratch_pairs` keeps its capacity across splits
                        // and launches; 32 lanes always fit, so this never
                        // reallocates.
                        self.scratch_pairs.clear();
                        self.scratch_pairs
                            .extend(access.lanes.iter().map(|l| (l.lane, l.addr)));
                        match op {
                            AtomOp::Cas => wl.on_cas(&self.scratch_pairs, scope),
                            AtomOp::Exch => wl.on_exch(&self.scratch_pairs, scope),
                            _ => unreachable!("matched above"),
                        }
                    }
                }
                AccessType::Atomic {
                    scope_block: scope == Scope::Block,
                }
            }
        };

        // The injected check runs data-parallel across the split's lanes:
        // one SIMD issue worth of check + (uncontended) metadata lock.
        clock.charge(
            CostCategory::Detection,
            self.cfg.check_cost + self.cfg.md_lock_cost,
        );

        // §6.5 optimization 1: same-address loads/atomics of the active
        // lanes cannot race with each other — one lane checks for all.
        let coalescible = self.cfg.coalescing
            && !matches!(kind, AccessType::Store)
            && access.lanes.len() > 1
            && access.lanes.iter().all(|l| l.addr == access.lanes[0].addr);
        if coalescible {
            self.stats.coalesced_saved += access.lanes.len() as u64 - 1;
            let rep = access.lanes[0];
            self.process_access(&rep, kind, access, clock);
        } else {
            // Lanes hitting the *same* metadata entry serialize on its
            // lock; lanes on distinct entries proceed in parallel. Charge
            // the intra-warp serialization the coalescing optimization
            // exists to remove.
            if access.lanes.len() > 1 {
                self.scratch_words.clear();
                self.scratch_words
                    .extend(access.lanes.iter().map(|l| l.addr / 4));
                self.scratch_words.sort_unstable();
                self.scratch_words.dedup();
                let dup = access.lanes.len() - self.scratch_words.len();
                if dup > 0 {
                    clock.charge(
                        CostCategory::Detection,
                        dup as u64 * (self.cfg.check_cost + self.cfg.md_lock_cost),
                    );
                }
            }
            for i in 0..access.lanes.len() {
                let la = access.lanes[i];
                self.process_access(&la, kind, access, clock);
            }
        }
    }
}
