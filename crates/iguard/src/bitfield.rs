//! Packed 64-bit metadata words, bit-for-bit the layout of Figure 4.
//!
//! A memory-metadata entry is 16 bytes per 4-byte word of global memory:
//! one *last accessor* word and one *last writer* word.
//!
//! ```text
//! Last accessor:
//! [63-54] [53-48] [47-46] [45-31] [30-26]  [25-20]    [19-14]    [13-6]   [5-0]
//!  Tag     Flags   Unused  WarpID  ThreadID DevFenceID BlkFenceID BlkBarID WarpBarID
//!
//! Last writer:
//! [63-48] [47-46] [45-31] [30-26]  [25-20]    [19-14]    [13-6]   [5-0]
//!  Locks   Unused  WarpID  ThreadID DevFenceID BlkFenceID BlkBarID WarpBarID
//! ```
//!
//! Flags (6 bits): Valid, Modified, Atomic, Scope, DevShared, BlkShared.
//!
//! Counter fields deliberately *wrap* at their field width — the paper
//! accepts the resulting (very unlikely) false positives/negatives from,
//! e.g., exactly 256 `syncthreads` between two accesses (§6.7). The
//! reproduction keeps the same widths so it inherits the same behaviour.

/// Width of the WarpID field (bits).
pub const WARP_ID_BITS: u32 = 15;
/// Width of the ThreadID (lane) field (bits).
pub const THREAD_ID_BITS: u32 = 5;
/// Width of each fence counter (bits).
pub const FENCE_BITS: u32 = 6;
/// Width of the block barrier counter (bits).
pub const BLK_BAR_BITS: u32 = 8;
/// Width of the warp barrier counter (bits).
pub const WARP_BAR_BITS: u32 = 6;
/// Width of the address tag (bits).
pub const TAG_BITS: u32 = 10;
/// Width of the lock Bloom summary (bits).
pub const LOCK_BITS: u32 = 16;

const fn mask(bits: u32) -> u64 {
    (1u64 << bits) - 1
}

/// Synchronization counters snapshot shared by both metadata words:
/// WarpID | ThreadID | DevFenceID | BlkFenceID | BlkBarID | WarpBarID
/// packed into bits [45-0].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessorInfo {
    /// Global warp id of the accessor (15-bit, wraps).
    pub warp_id: u32,
    /// Lane within the warp (5-bit).
    pub lane: u32,
    /// Device-scope fence counter of the accessor at access time (6-bit).
    pub dev_fence: u8,
    /// Block-scope fence counter at access time (6-bit).
    pub blk_fence: u8,
    /// Block barrier counter at access time (8-bit).
    pub blk_bar: u8,
    /// Warp barrier counter at access time (6-bit).
    pub warp_bar: u8,
}

impl AccessorInfo {
    fn pack(self) -> u64 {
        ((self.warp_id as u64 & mask(WARP_ID_BITS)) << 31)
            | ((self.lane as u64 & mask(THREAD_ID_BITS)) << 26)
            | ((self.dev_fence as u64 & mask(FENCE_BITS)) << 20)
            | ((self.blk_fence as u64 & mask(FENCE_BITS)) << 14)
            | ((self.blk_bar as u64 & mask(BLK_BAR_BITS)) << 6)
            | (self.warp_bar as u64 & mask(WARP_BAR_BITS))
    }

    fn unpack(w: u64) -> Self {
        AccessorInfo {
            warp_id: ((w >> 31) & mask(WARP_ID_BITS)) as u32,
            lane: ((w >> 26) & mask(THREAD_ID_BITS)) as u32,
            dev_fence: ((w >> 20) & mask(FENCE_BITS)) as u8,
            blk_fence: ((w >> 14) & mask(FENCE_BITS)) as u8,
            blk_bar: ((w >> 6) & mask(BLK_BAR_BITS)) as u8,
            warp_bar: (w & mask(WARP_BAR_BITS)) as u8,
        }
    }

    /// The accessor's block id, derived as the paper does (§6.2): WarpID
    /// divided by warps-per-block of the running kernel.
    #[must_use]
    pub fn block_id(&self, warps_per_block: u32) -> u32 {
        self.warp_id / warps_per_block.max(1)
    }
}

/// Entry flags ([53-48] of the accessor word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Entry initialized.
    pub valid: bool,
    /// Location has been written.
    pub modified: bool,
    /// Location has been accessed via atomics.
    pub atomic: bool,
    /// Scope of the last atomic: false = device, true = block.
    pub scope_block: bool,
    /// Accessors span multiple threadblocks.
    pub dev_shared: bool,
    /// Accessors span multiple warps of one threadblock.
    pub blk_shared: bool,
}

impl Flags {
    fn pack(self) -> u64 {
        u64::from(self.valid)
            | (u64::from(self.modified) << 1)
            | (u64::from(self.atomic) << 2)
            | (u64::from(self.scope_block) << 3)
            | (u64::from(self.dev_shared) << 4)
            | (u64::from(self.blk_shared) << 5)
    }

    fn unpack(bits: u64) -> Self {
        Flags {
            valid: bits & 1 != 0,
            modified: bits & 2 != 0,
            atomic: bits & 4 != 0,
            scope_block: bits & 8 != 0,
            dev_shared: bits & 16 != 0,
            blk_shared: bits & 32 != 0,
        }
    }
}

/// One decoded 16-byte memory-metadata entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetadataEntry {
    /// Address tag ([63-54] of the accessor word).
    pub tag: u16,
    /// Entry flags.
    pub flags: Flags,
    /// Identity + synchronization snapshot of the last accessor.
    pub accessor: AccessorInfo,
    /// Identity + synchronization snapshot of the last writer.
    pub writer: AccessorInfo,
    /// 16-bit, 2-hash Bloom summary of locks held by the last writer
    /// ([63-48] of the writer word).
    pub locks: u16,
}

impl MetadataEntry {
    /// Encodes to the two raw 64-bit words of Figure 4.
    #[must_use]
    pub fn pack(self) -> (u64, u64) {
        let acc = ((self.tag as u64 & mask(TAG_BITS)) << 54)
            | (self.flags.pack() << 48)
            | self.accessor.pack();
        let wr = ((self.locks as u64) << 48) | self.writer.pack();
        (acc, wr)
    }

    /// Decodes from the two raw 64-bit words.
    #[must_use]
    pub fn unpack(acc: u64, wr: u64) -> Self {
        MetadataEntry {
            tag: ((acc >> 54) & mask(TAG_BITS)) as u16,
            flags: Flags::unpack((acc >> 48) & mask(6)),
            accessor: AccessorInfo::unpack(acc),
            writer: AccessorInfo::unpack(wr),
            locks: ((wr >> 48) & mask(LOCK_BITS)) as u16,
        }
    }
}

/// Wrapping increment at a field's width, used by the synchronization
/// metadata counters.
#[must_use]
pub fn wrapping_inc(value: u8, bits: u32) -> u8 {
    (value.wrapping_add(1)) & (mask(bits) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetadataEntry {
        MetadataEntry {
            tag: 0x2A5,
            flags: Flags {
                valid: true,
                modified: true,
                atomic: false,
                scope_block: true,
                dev_shared: false,
                blk_shared: true,
            },
            accessor: AccessorInfo {
                warp_id: 0x7ABC,
                lane: 19,
                dev_fence: 33,
                blk_fence: 12,
                blk_bar: 200,
                warp_bar: 61,
            },
            writer: AccessorInfo {
                warp_id: 0x0123,
                lane: 31,
                dev_fence: 63,
                blk_fence: 0,
                blk_bar: 255,
                warp_bar: 1,
            },
            locks: 0xBEEF,
        }
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let e = sample();
        let (a, w) = e.pack();
        assert_eq!(MetadataEntry::unpack(a, w), e);
    }

    #[test]
    fn entry_is_16_bytes() {
        // Two u64 words — the paper's 16-byte entry (§6.1).
        let (a, w) = sample().pack();
        assert_eq!(std::mem::size_of_val(&a) + std::mem::size_of_val(&w), 16);
    }

    #[test]
    fn fields_occupy_documented_positions() {
        let mut e = MetadataEntry::default();
        e.flags.valid = true;
        let (a, _) = e.pack();
        assert_eq!(a, 1 << 48, "Valid is bit 48 of the accessor word");

        let e = MetadataEntry {
            tag: 0x3FF,
            ..MetadataEntry::default()
        };
        let (a, _) = e.pack();
        assert_eq!(a, 0x3FF << 54, "Tag occupies [63-54]");

        let e = MetadataEntry {
            locks: 0xFFFF,
            ..MetadataEntry::default()
        };
        let (_, w) = e.pack();
        assert_eq!(
            w,
            0xFFFF_u64 << 48,
            "Locks occupy [63-48] of the writer word"
        );

        let mut e = MetadataEntry::default();
        e.accessor.warp_id = 1;
        let (a, _) = e.pack();
        assert_eq!(a, 1 << 31, "WarpID starts at bit 31");
    }

    #[test]
    fn field_widths_truncate_out_of_range_values() {
        let mut e = MetadataEntry::default();
        e.accessor.warp_id = 0xFFFF_FFFF;
        let (a, w) = e.pack();
        let d = MetadataEntry::unpack(a, w);
        assert_eq!(
            d.accessor.warp_id,
            mask(WARP_ID_BITS) as u32,
            "15-bit WarpID wraps"
        );
    }

    #[test]
    fn wrapping_counters() {
        assert_eq!(wrapping_inc(254, BLK_BAR_BITS), 255);
        assert_eq!(
            wrapping_inc(255, BLK_BAR_BITS),
            0,
            "8-bit barrier counter wraps at 256"
        );
        assert_eq!(
            wrapping_inc(63, FENCE_BITS),
            0,
            "6-bit fence counter wraps at 64"
        );
        assert_eq!(wrapping_inc(63, WARP_BAR_BITS), 0);
    }

    #[test]
    fn block_id_derivation_matches_paper() {
        // §6.2: block id = WarpID / warps-per-block.
        let a = AccessorInfo {
            warp_id: 13,
            ..AccessorInfo::default()
        };
        assert_eq!(a.block_id(4), 3);
        assert_eq!(a.block_id(1), 13);
    }
}
