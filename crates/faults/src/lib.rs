//! # faults: the deterministic fault-injection plane
//!
//! iGUARD runs *inside* the GPU it is checking: its metadata table can
//! alias under hash pressure, its 1 MB report buffer can fill mid-kernel,
//! and its instrumentation channel competes with the workload. The paper
//! treats these as benign-by-construction; a production-scale detector
//! must *measure* and *survive* them. This crate is the measurement half:
//! a seedable, fully deterministic source of injected failures that every
//! layer of the pipeline consults, with per-site accounting so that no
//! degradation is ever silent.
//!
//! ## Design
//!
//! - **Sites, not probabilities on a shared dice.** Each [`FaultSite`]
//!   owns an independent counter-based stream derived from
//!   `(seed, domain, site, draw#)` via splitmix64. Components never share
//!   an injector, so the fault schedule of one layer cannot depend on how
//!   another layer interleaves its draws — campaigns replay exactly.
//! - **Disabled is free and invisible.** A site with rate 0 consumes no
//!   draws and mutates no state; a fully disabled config short-circuits at
//!   one branch. The zero-fault configuration is byte-identical to a
//!   build without the fault plane (pinned by the golden matrix).
//! - **Everything is accounted.** Every `true` returned by
//!   [`FaultInjector::fire`] increments [`FaultStats`]; consumers pair
//!   each injection with their own degradation counter, and the chaos
//!   gate asserts the two sides reconcile.

#![forbid(unsafe_code)]

use std::fmt;

/// Where in the pipeline a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Metadata-table capacity pressure: a live entry is evicted before
    /// its next use, so the detector forgets the previous accessor.
    MetaEviction,
    /// Tag-alias storm: a metadata load observes a slot reused by a
    /// different address and must reinitialize (same observable effect as
    /// an eviction, different cause).
    MetaTagAlias,
    /// A device→host channel record is lost in transit.
    ReportDrop,
    /// A device→host channel record arrives corrupted (detected by the
    /// host consumer and discarded).
    ReportCorrupt,
    /// A full-buffer flush fails and the buffered records are lost.
    ChannelOverflow,
    /// UVM eviction storm: a resident metadata page is evicted behind the
    /// detector's back and must be migrated again.
    UvmEvictStorm,
    /// Device memory exhausted mid-prefault: the remaining metadata pages
    /// stay host-resident.
    UvmDeviceOom,
    /// The kernel hangs and the watchdog kills it mid-execution.
    KernelHang,
    /// The kernel launch aborts at the boundary (e.g. a sticky device
    /// fault from a previous context).
    KernelAbort,
}

/// Number of distinct fault sites.
pub const NUM_SITES: usize = 9;

impl FaultSite {
    /// Every site, in stable order (the [`FaultStats`] index order).
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::MetaEviction,
        FaultSite::MetaTagAlias,
        FaultSite::ReportDrop,
        FaultSite::ReportCorrupt,
        FaultSite::ChannelOverflow,
        FaultSite::UvmEvictStorm,
        FaultSite::UvmDeviceOom,
        FaultSite::KernelHang,
        FaultSite::KernelAbort,
    ];

    /// Stable index into rate/stat arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable name (CLI flags, snapshot files, reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::MetaEviction => "meta-eviction",
            FaultSite::MetaTagAlias => "meta-tag-alias",
            FaultSite::ReportDrop => "report-drop",
            FaultSite::ReportCorrupt => "report-corrupt",
            FaultSite::ChannelOverflow => "channel-overflow",
            FaultSite::UvmEvictStorm => "uvm-evict-storm",
            FaultSite::UvmDeviceOom => "uvm-device-oom",
            FaultSite::KernelHang => "kernel-hang",
            FaultSite::KernelAbort => "kernel-abort",
        }
    }

    /// Parses a [`FaultSite::name`] back to the site.
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Denominator of per-site fault rates: a rate of `RATE_ONE` fires on
/// every draw.
pub const RATE_ONE: u32 = 1 << 16;

/// The fault plane's configuration: a campaign seed plus a per-site rate
/// in parts per [`RATE_ONE`]. The default is fully disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Campaign seed; all injector streams derive from it.
    pub seed: u64,
    rates: [u32; NUM_SITES],
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// No faults anywhere (the production configuration).
    #[must_use]
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            rates: [0; NUM_SITES],
        }
    }

    /// The same rate at every site.
    #[must_use]
    pub fn uniform(seed: u64, rate_per_64k: u32) -> Self {
        FaultConfig {
            seed,
            rates: [rate_per_64k.min(RATE_ONE); NUM_SITES],
        }
    }

    /// Builder: sets one site's rate (parts per [`RATE_ONE`]).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate_per_64k: u32) -> Self {
        self.rates[site.index()] = rate_per_64k.min(RATE_ONE);
        self
    }

    /// Builder: sets the campaign seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This site's configured rate.
    #[must_use]
    pub fn rate(&self, site: FaultSite) -> u32 {
        self.rates[site.index()]
    }

    /// Whether any site can ever fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }
}

/// Per-site injection counters — the ground truth every consumer-side
/// degradation counter must reconcile against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults fired, indexed by [`FaultSite::index`].
    pub injected: [u64; NUM_SITES],
}

impl FaultStats {
    /// Faults fired at one site.
    #[must_use]
    pub fn get(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// Faults fired across all sites.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Adds another injector's counters into this one (campaign rollups).
    pub fn accumulate(&mut self, other: &FaultStats) {
        for (a, b) in self.injected.iter_mut().zip(other.injected.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for site in FaultSite::ALL {
            let n = self.get(site);
            if n > 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={n}", site.name())?;
                first = false;
            }
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// One component's handle onto the fault plane.
///
/// Each consumer (a channel, a metadata table, a UVM region, a GPU launch
/// boundary) owns its own injector, created with a distinct `domain`
/// string; the per-site draw counters make every stream a pure function
/// of `(config.seed, domain, site, draw#)` — independent of thread
/// interleaving, of other components, and of how often *disabled* sites
/// are consulted.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    enabled: bool,
    seed: u64,
    domain: u64,
    rates: [u32; NUM_SITES],
    draws: [u64; NUM_SITES],
    stats: FaultStats,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

/// splitmix64: the standard 64-bit finalizing mixer (public domain,
/// Vigna). Statistically strong enough for fault scheduling and fully
/// portable.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the domain string, so domains are stable across runs and
/// platforms.
fn domain_hash(domain: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in domain.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultInjector {
    /// An injector that never fires (zero branches beyond one `bool`).
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector {
            enabled: false,
            seed: 0,
            domain: 0,
            rates: [0; NUM_SITES],
            draws: [0; NUM_SITES],
            stats: FaultStats::default(),
        }
    }

    /// An injector for one component. `domain` names the component
    /// ("report-channel", "metadata", ...), isolating its streams from
    /// every other component's.
    #[must_use]
    pub fn new(cfg: &FaultConfig, domain: &str) -> Self {
        FaultInjector {
            enabled: cfg.enabled(),
            seed: cfg.seed,
            domain: domain_hash(domain),
            rates: {
                let mut r = [0u32; NUM_SITES];
                for site in FaultSite::ALL {
                    r[site.index()] = cfg.rate(site);
                }
                r
            },
            draws: [0; NUM_SITES],
            stats: FaultStats::default(),
        }
    }

    /// Whether any site of this injector can ever fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The raw hash for this site's next draw (also consumed by
    /// [`FaultInjector::fire`] / [`FaultInjector::draw`]).
    fn next_hash(&mut self, site: FaultSite) -> u64 {
        let i = site.index();
        let n = self.draws[i];
        self.draws[i] += 1;
        splitmix64(
            self.seed
                ^ self.domain
                ^ (n.wrapping_mul(0xA24B_AED4_963E_E407))
                ^ ((i as u64) << 56),
        )
    }

    /// One Bernoulli draw at `site`'s configured rate. Counts the
    /// injection when it fires. A rate-0 site returns `false` without
    /// consuming a draw, so disabling a site never shifts another's
    /// stream.
    pub fn fire(&mut self, site: FaultSite) -> bool {
        if !self.enabled || self.rates[site.index()] == 0 {
            return false;
        }
        let h = self.next_hash(site);
        let fired = ((h & 0xFFFF) as u32) < self.rates[site.index()];
        if fired {
            self.stats.injected[site.index()] += 1;
        }
        fired
    }

    /// A deterministic magnitude in `1..=bound` from `site`'s stream
    /// (storm sizes, hang points). Consumes one draw; does not count an
    /// injection.
    pub fn draw(&mut self, site: FaultSite, bound: u64) -> u64 {
        let h = self.next_hash(site);
        1 + h % bound.max(1)
    }

    /// Injection counters so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(cfg: &FaultConfig, domain: &str, site: FaultSite, n: usize) -> Vec<bool> {
        let mut inj = FaultInjector::new(cfg, domain);
        (0..n).map(|_| inj.fire(site)).collect()
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = FaultConfig::uniform(7, RATE_ONE / 4);
        assert_eq!(
            stream(&cfg, "chan", FaultSite::ReportDrop, 256),
            stream(&cfg, "chan", FaultSite::ReportDrop, 256),
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultConfig::uniform(1, RATE_ONE / 4);
        let b = FaultConfig::uniform(2, RATE_ONE / 4);
        assert_ne!(
            stream(&a, "chan", FaultSite::ReportDrop, 256),
            stream(&b, "chan", FaultSite::ReportDrop, 256),
        );
    }

    #[test]
    fn domains_are_independent() {
        let cfg = FaultConfig::uniform(7, RATE_ONE / 4);
        assert_ne!(
            stream(&cfg, "chan", FaultSite::ReportDrop, 256),
            stream(&cfg, "metadata", FaultSite::ReportDrop, 256),
        );
    }

    #[test]
    fn sites_are_independent_streams() {
        let cfg = FaultConfig::uniform(7, RATE_ONE / 4);
        // Interleaving a second site's draws must not perturb the first's.
        let mut a = FaultInjector::new(&cfg, "chan");
        let solo: Vec<bool> = (0..64).map(|_| a.fire(FaultSite::ReportDrop)).collect();
        let mut b = FaultInjector::new(&cfg, "chan");
        let interleaved: Vec<bool> = (0..64)
            .map(|_| {
                let _ = b.fire(FaultSite::ReportCorrupt);
                b.fire(FaultSite::ReportDrop)
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn disabled_never_fires_and_counts_nothing() {
        let mut inj = FaultInjector::new(&FaultConfig::disabled(), "x");
        for _ in 0..1000 {
            assert!(!inj.fire(FaultSite::KernelAbort));
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(!inj.enabled());
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let cfg = FaultConfig::disabled()
            .with_seed(3)
            .with_rate(FaultSite::MetaEviction, RATE_ONE);
        let mut inj = FaultInjector::new(&cfg, "meta");
        for _ in 0..100 {
            assert!(inj.fire(FaultSite::MetaEviction));
            assert!(!inj.fire(FaultSite::MetaTagAlias));
        }
        assert_eq!(inj.stats().get(FaultSite::MetaEviction), 100);
        assert_eq!(inj.stats().get(FaultSite::MetaTagAlias), 0);
        assert_eq!(inj.stats().total(), 100);
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let cfg = FaultConfig::uniform(11, RATE_ONE / 8); // 12.5 %
        let fired = stream(&cfg, "chan", FaultSite::ReportDrop, 10_000)
            .iter()
            .filter(|&&f| f)
            .count();
        assert!(
            (800..1700).contains(&fired),
            "12.5 % rate produced {fired}/10000"
        );
    }

    #[test]
    fn draw_is_deterministic_and_bounded() {
        let cfg = FaultConfig::uniform(5, RATE_ONE);
        let mut a = FaultInjector::new(&cfg, "launch");
        let mut b = FaultInjector::new(&cfg, "launch");
        for bound in [1u64, 7, 1000] {
            let x = a.draw(FaultSite::KernelHang, bound);
            assert_eq!(x, b.draw(FaultSite::KernelHang, bound));
            assert!((1..=bound).contains(&x));
        }
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("nope"), None);
    }

    #[test]
    fn stats_display_lists_nonzero_sites() {
        let mut s = FaultStats::default();
        assert_eq!(s.to_string(), "none");
        s.injected[FaultSite::ReportDrop.index()] = 3;
        assert_eq!(s.to_string(), "report-drop=3");
    }

    #[test]
    fn accumulate_sums_per_site() {
        let mut a = FaultStats::default();
        let mut b = FaultStats::default();
        a.injected[0] = 2;
        b.injected[0] = 3;
        b.injected[8] = 1;
        a.accumulate(&b);
        assert_eq!(a.injected[0], 5);
        assert_eq!(a.injected[8], 1);
        assert_eq!(a.total(), 6);
    }
}
