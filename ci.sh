#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace tests, clippy clean.
# With --quick, additionally runs the perf-harness smoke: a 5-workload
# `perf --quick` sweep whose JSON is validated by re-parsing (the binary
# exits non-zero on malformed output).
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "ci.sh: unknown flag $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace --release

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 1 ]]; then
  echo "== perf smoke (--quick) =="
  cargo run --release -p bench --bin perf -- --quick --no-progress
  test -s target/BENCH_PR2.quick.json || { echo "perf smoke: missing/empty JSON" >&2; exit 1; }
fi

echo "CI OK"
