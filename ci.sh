#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace tests, clippy clean.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace --release

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
