#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace tests, clippy clean.
# With --quick, additionally runs the perf-harness smoke: a 5-workload
# `perf --quick` sweep whose JSON is validated by re-parsing (the binary
# exits non-zero on malformed output).
# With --perf, additionally runs the perf tier: the shard-determinism
# suite, the perf smoke, and structural validation of the emitted
# bench-pr7-v1 JSON (schema, host block, busy+idle==total per overlap
# engine). Wall-clock speedup assertions are host-gated by the harness
# itself (single-core boxes record but never compare), so this tier is
# safe on any machine.
# With --fuzz, additionally runs a time-boxed differential fuzz campaign
# (generated kernels vs the schedule-space oracle vs both detectors); any
# unexplained divergence fails the gate.
# With --chaos, additionally runs the fault-injection smoke: seeded chaos
# campaigns with every fault site armed (zero panics, every degradation
# accounted, clean mid-campaign checkpoint resume) plus the
# accuracy-under-pressure sweep (missed-check accounting).
# With --litmus, additionally runs the weak-memory litmus smoke: replay of
# the pinned v2 litmus corpus (witness traces re-run on the weak machine,
# verdicts and explanations byte-compared) plus a time-boxed random litmus
# campaign; any unexplained divergence or replay drift fails the gate.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
PERF=0
FUZZ=0
CHAOS=0
LITMUS=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --perf) PERF=1 ;;
    --fuzz) FUZZ=1 ;;
    --chaos) CHAOS=1 ;;
    --litmus) LITMUS=1 ;;
    *) echo "ci.sh: unknown flag $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace --release

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 1 ]]; then
  echo "== perf smoke (--quick) =="
  cargo run --release -p bench --bin perf -- --quick --no-progress
  test -s target/BENCH_PR7.quick.json || { echo "perf smoke: missing/empty JSON" >&2; exit 1; }
  cargo run --release -p bench --bin perf -- --validate target/BENCH_PR7.quick.json
fi

if [[ "$PERF" -eq 1 ]]; then
  echo "== shard determinism suite (--perf) =="
  cargo test -q -p bench --release --test shard_determinism
  echo "== perf smoke (--perf) =="
  cargo run --release -p bench --bin perf -- --quick --no-progress
  echo "== perf JSON validation (--perf) =="
  # Checks the schema tag, the host block on every recorded run, and the
  # overlap invariants (busy + idle == total per engine, overlapped <=
  # serial) on the file the smoke just wrote.
  cargo run --release -p bench --bin perf -- --validate target/BENCH_PR7.quick.json
  if [[ -s BENCH_PR7.json ]]; then
    cargo run --release -p bench --bin perf -- --validate BENCH_PR7.json
  fi
  if [[ "$(nproc)" -lt 2 ]]; then
    echo "perf tier: single-core host, skipping wall-clock speedup checks"
  fi
fi

if [[ "$FUZZ" -eq 1 ]]; then
  echo "== differential fuzz smoke (--fuzz) =="
  # Unlimited kernel stream, hard 45 s budget: stays under a minute while
  # covering as many kernels as the machine manages.
  cargo run --release -p bench --bin fuzz -- --kernels 0 --budget 45 --seed 42 --no-progress
fi

if [[ "$CHAOS" -eq 1 ]]; then
  echo "== chaos smoke (--chaos) =="
  # 5 seeded campaigns, all 9 fault sites armed at ~1.6%: no panics, every
  # injected fault traceable to a counter, checkpoint resume byte-exact.
  cargo run --release -p bench --bin chaos -- --campaigns 5 --seed 42 --no-progress
  echo "== pressure sweep (--chaos) =="
  # Exits non-zero if any missed check is unaccounted.
  cargo run --release -p bench --bin pressure -- --no-progress
fi

if [[ "$LITMUS" -eq 1 ]]; then
  echo "== litmus corpus replay (--litmus) =="
  cargo run --release -p bench --bin litmus -- --corpus tests/corpus/litmus_v2.corpus --no-progress
  echo "== litmus fuzz smoke (--litmus) =="
  # Unlimited spec stream, hard 30 s budget; exits non-zero on any
  # unexplained oracle/detector divergence.
  cargo run --release -p bench --bin litmus -- --tests 0 --budget 30 --seed 42 --no-progress
fi

echo "CI OK"
