//! # iguard-repro: facade crate for the iGUARD (SOSP '21) reproduction
//!
//! Re-exports the whole workspace so examples, integration tests, and
//! downstream users can depend on a single crate:
//!
//! - [`gpu_sim`] — the simulated CUDA execution substrate;
//! - [`nvbit_sim`] — the dynamic binary-instrumentation framework;
//! - [`uvm_sim`] — unified-virtual-memory (demand paging) simulation;
//! - [`iguard`] — the paper's contribution: the in-GPU race detector;
//! - [`barracuda`] — the CPU-side baseline detector;
//! - [`workloads`] — the 40+ workloads of the paper's evaluation;
//! - [`oracle`] — schedule-space ground truth: bounded exhaustive ITS
//!   enumeration and differential testing of the detectors.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for a minimal
//! end-to-end detection run.

#![forbid(unsafe_code)]

pub use barracuda;
pub use gpu_sim;
pub use iguard;
pub use nvbit_sim;
pub use oracle;
pub use uvm_sim;
pub use workloads;
