//! Baseline parity: Barracuda must behave exactly as the paper reports per
//! workload — refuse the binaries it cannot handle (and for the right
//! reason), find the races it found, miss the ITS races it is blind to,
//! and fail to terminate on `interac`.

use iguard_repro::barracuda::{self, Barracuda, BarracudaConfig, BarracudaFailure, BinaryKind};
use iguard_repro::gpu_sim::error::SimError;
use iguard_repro::gpu_sim::hook::ExecMode;
use iguard_repro::gpu_sim::machine::{Gpu, GpuConfig};
use iguard_repro::nvbit_sim::Instrumented;
use iguard_repro::workloads::{self, BarracudaExpectation, Size, Suite, Workload};

const SEED: u64 = 42;

enum Outcome {
    Unsupported(barracuda::Unsupported),
    Ran { races: usize, timed_out: bool },
}

fn run_barracuda(w: &Workload) -> Outcome {
    let cfg = GpuConfig {
        seed: SEED,
        mode: ExecMode::Its,
        max_steps: 80_000_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let launches = w.build(&mut gpu, Size::Test);
    let kind = if w.multi_file {
        BinaryKind::MultiFile
    } else {
        BinaryKind::SingleFile
    };
    if let Err(u) = barracuda::supports(&Workload::kernels(&launches), kind) {
        return Outcome::Unsupported(u);
    }
    let bcfg = BarracudaConfig {
        timeout_serial_cycles: 660_000,
        ..BarracudaConfig::default()
    };
    let mut tool = Instrumented::new(Barracuda::new(bcfg));
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool) {
            Ok(_) | Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("{}: {e}", w.name),
        }
    }
    let races = tool.tool_mut().finish(gpu.clock_mut()).len();
    let timed_out = matches!(
        tool.tool().failure(),
        Some(BarracudaFailure::DidNotTerminate)
    );
    Outcome::Ran { races, timed_out }
}

#[test]
fn barracuda_matches_every_table4_expectation() {
    for w in workloads::racey() {
        let outcome = run_barracuda(&w);
        match (w.barracuda, outcome) {
            (BarracudaExpectation::Unsupported, Outcome::Unsupported(_)) => {}
            (BarracudaExpectation::Races(n), Outcome::Ran { races, timed_out }) => {
                assert!(!timed_out, "{}: unexpected timeout", w.name);
                assert_eq!(races, n, "{}: expected {n} races", w.name);
            }
            (BarracudaExpectation::Timeout(n), Outcome::Ran { races, timed_out }) => {
                assert!(timed_out, "{}: expected non-termination", w.name);
                assert_eq!(races, n, "{}: expected {n} partial races", w.name);
            }
            (exp, Outcome::Unsupported(u)) => {
                panic!("{}: expected {exp:?}, got unsupported ({u})", w.name)
            }
            (exp, Outcome::Ran { races, timed_out }) => {
                panic!(
                    "{}: expected {exp:?}, got {races} races (timeout={timed_out})",
                    w.name
                )
            }
        }
    }
}

#[test]
fn barracuda_refusal_reasons_are_faithful() {
    // ScoR: scoped atomics. CG: warp barriers (ITS). Libraries: PTX.
    for w in workloads::racey() {
        if let Outcome::Unsupported(u) = run_barracuda(&w) {
            let expected = match w.suite {
                Suite::ScoR => barracuda::Unsupported::ScopedAtomics,
                Suite::Cg | Suite::NvlibCg => barracuda::Unsupported::WarpBarriers,
                _ => barracuda::Unsupported::MultiFilePtx,
            };
            assert_eq!(u, expected, "{}", w.name);
        }
    }
}

#[test]
fn barracuda_misses_its_races_iguard_catches() {
    // reduction (ScoR) has 3 ITS races; Barracuda refuses the suite, but
    // even a hypothetical run would miss them: its HB model assumes
    // same-warp lockstep. Check on a minimal ITS-racy kernel it CAN run.
    use iguard_repro::gpu_sim::prelude::*;
    let mut b = KernelBuilder::new("its_only");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is1 = b.eq(tid, 1u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is1, skip);
    let v = b.imm(7);
    b.st(base, 1, v);
    b.bind(skip);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    let k = b.build();

    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(4).unwrap();
    let mut bar = Instrumented::new(Barracuda::default());
    gpu.launch(&k, 1, 32, &[buf], &mut bar).unwrap();
    assert!(
        bar.tool_mut().finish(gpu.clock_mut()).is_empty(),
        "the lockstep assumption must blind Barracuda to intra-warp races"
    );

    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(4).unwrap();
    let mut ig = Instrumented::new(iguard_repro::iguard::Iguard::default());
    gpu.launch(&k, 1, 32, &[buf], &mut ig).unwrap();
    assert!(
        ig.tool().unique_races() > 0,
        "iGUARD must catch the same race"
    );
}

#[test]
fn barracuda_clean_set_has_no_false_positives() {
    for w in workloads::clean() {
        if let Outcome::Ran { races, timed_out } = run_barracuda(&w) {
            assert!(!timed_out, "{}: unexpected timeout", w.name);
            assert_eq!(races, 0, "{}: Barracuda false positives", w.name);
        }
    }
}

#[test]
fn barracuda_oom_policy_matches_fig14() {
    // 50% reservation + 2x footprint shadow against 24 GB capacity.
    let capacity: u64 = 24 << 30;
    for (gb, fits) in [(1u64, true), (4, true), (8, false), (16, false)] {
        let needed = capacity / 2 + 2 * (gb << 30);
        assert_eq!(needed <= capacity, fits, "{gb} GB");
    }
}

#[test]
fn barracuda_oom_fires_end_to_end_at_large_footprints() {
    // Exercise the launch-time reservation check itself (not just the
    // arithmetic): a 10 GB logical footprint cannot coexist with the 50%
    // reservation on a 24 GB device.
    use iguard_repro::gpu_sim::prelude::*;
    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc_logical(64, 10 << 30).unwrap();
    let mut b = KernelBuilder::new("big_footprint");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let off = b.mul(tid, 4u32);
    let a = b.add(base, off);
    b.st(a, 0, tid);
    let k = b.build();
    let mut tool = Instrumented::new(Barracuda::default());
    gpu.launch(&k, 1, 32, &[buf], &mut tool).unwrap();
    assert!(
        matches!(
            tool.tool().failure(),
            Some(BarracudaFailure::OutOfMemory { .. })
        ),
        "the reservation policy must fail at launch"
    );

    // iGUARD on the identical setup keeps running (UVM-backed metadata).
    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc_logical(64, 10 << 30).unwrap();
    let mut ig = Instrumented::new(iguard_repro::iguard::Iguard::default());
    gpu.launch(&k, 1, 32, &[buf], &mut ig).unwrap();
    assert_eq!(ig.tool().unique_races(), 0);
}

#[test]
fn curd_is_cheap_on_bulk_synchronous_kernels_and_matches_barracuda_otherwise() {
    use iguard_repro::barracuda::{Curd, CurdPath};
    // b_reduce: syncthreads-only -> fast path, overhead in the ~3x regime
    // the paper quotes; Barracuda on the same workload is ~30x+.
    let w = workloads::by_name("b_reduce").unwrap();
    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let launches = w.build(&mut gpu, Size::Bench);
    let kernels = Workload::kernels(&launches);
    let curd = Curd::for_kernels(&kernels, BinaryKind::SingleFile, Default::default()).unwrap();
    assert_eq!(curd.path(), CurdPath::Fast);
    let mut tool = Instrumented::new(curd);
    for l in &launches {
        gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
            .unwrap();
    }
    let races = tool.tool_mut().finish(gpu.clock_mut());
    assert!(races.is_empty(), "b_reduce is race-free");
    let curd_time = gpu.clock().total_time();

    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let launches = w.build(&mut gpu, Size::Bench);
    for l in &launches {
        gpu.launch(
            &l.kernel,
            l.grid,
            l.block,
            &l.params,
            &mut iguard_repro::gpu_sim::hook::NullHook,
        )
        .unwrap();
    }
    let native_time = gpu.clock().total_time();
    let overhead = curd_time / native_time;
    assert!(
        overhead < 8.0,
        "CURD's fast path must stay in the low-single-digit regime, got {overhead:.1}x"
    );

    // d_sel_if uses atomics -> wholesale Barracuda fallback.
    let w = workloads::by_name("d_sel_if").unwrap();
    let mut gpu = Gpu::new(GpuConfig {
        seed: SEED,
        ..GpuConfig::default()
    });
    let launches = w.build(&mut gpu, Size::Test);
    let kernels = Workload::kernels(&launches);
    let curd = Curd::for_kernels(&kernels, BinaryKind::SingleFile, Default::default()).unwrap();
    assert_eq!(curd.path(), CurdPath::BarracudaFallback);
}
