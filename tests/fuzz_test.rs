//! A ground-truth program fuzzer: generates random multi-phase kernels
//! whose race status is known *by construction*, and checks the detector's
//! verdict against the ground truth across random ITS schedules.
//!
//! Program shape: `P` phases over a double-buffered array. In each phase
//! every thread writes its own cell of `buf[phase % 2]` and reads a cell
//! of `buf[(phase-1) % 2]` written by a (generally cross-warp) thread of
//! the previous phase. Same-phase accesses touch different buffers, and
//! barriers are unconditional, so phases interact only across their gap:
//! the program races **iff** the generator drops a gap's
//! `__syncthreads()` — exact ground truth by construction.

use iguard_repro::gpu_sim::machine::{Gpu, GpuConfig};
use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::Iguard;
use iguard_repro::nvbit_sim::Instrumented;
use proptest::prelude::*;

const BLOCK: u32 = 64;

#[derive(Debug, Clone)]
struct PhasePlan {
    /// Offset defining which previous-phase cell each thread reads.
    read_shift: u32,
    /// Whether a `__syncthreads()` precedes this phase.
    synced: bool,
}

fn phase_strategy(force_sync: bool) -> impl Strategy<Value = PhasePlan> {
    (1u32..BLOCK, any::<bool>()).prop_map(move |(read_shift, synced)| PhasePlan {
        read_shift,
        synced: force_sync || synced,
    })
}

fn build(phases: &[PhasePlan]) -> (Kernel, bool) {
    let mut racy = false;
    let mut b = KernelBuilder::new("fuzzed");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            if p.synced {
                b.syncthreads();
            } else {
                // The previous phase's writes are read unordered: a race
                // (read_shift != 0 guarantees a cross-thread pair, and for
                // most threads a cross-warp one the detector must flag).
                racy = true;
            }
        }
        // Write own cell of this phase's buffer parity.
        let parity_base = (i % 2) as u32 * BLOCK;
        let wcell = b.add(tid, parity_base);
        let woff = b.mul(wcell, 4u32);
        let wa = b.add(base, woff);
        let v = b.add(tid, i as u32);
        b.st(wa, 0, v);
        if i > 0 {
            // Read another thread's cell of the previous parity.
            let prev_base = ((i - 1) % 2) as u32 * BLOCK;
            let t2 = b.add(tid, p.read_shift);
            let rcell = b.rem(t2, BLOCK);
            let shifted = b.add(rcell, prev_base);
            let roff = b.mul(shifted, 4u32);
            let ra = b.add(base, roff);
            let _ = b.ld(ra, 0);
        }
    }
    (b.build(), racy)
}

fn detect(kernel: &Kernel, seed: u64) -> usize {
    let mut gpu = Gpu::new(GpuConfig {
        seed,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(2 * BLOCK as usize).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(kernel, 1, BLOCK, &[buf], &mut tool).unwrap();
    tool.tool().unique_races()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fully synchronized fuzzed programs are never flagged.
    #[test]
    fn synchronized_fuzzed_programs_are_clean(
        phases in prop::collection::vec(phase_strategy(true), 2..5),
        seed in any::<u64>(),
    ) {
        let (k, racy) = build(&phases);
        prop_assert!(!racy);
        prop_assert_eq!(detect(&k, seed), 0);
    }

    /// Fuzzed programs are flagged iff the generator seeded a race —
    /// verdicts match ground truth on every schedule.
    #[test]
    fn fuzzed_verdicts_match_ground_truth(
        phases in prop::collection::vec(phase_strategy(false), 2..5),
        seed in any::<u64>(),
    ) {
        let (k, racy) = build(&phases);
        let found = detect(&k, seed) > 0;
        prop_assert_eq!(found, racy, "ground truth {} vs detector {}", racy, found);
    }
}
