//! Enumeration-completeness tests for the weak-memory litmus oracle:
//! exact schedule and outcome counts for the classic shapes, checked
//! against hand-computed values.
//!
//! Schedule counts under the eager-invisible POR are pure multinomials
//! over *visible* ops (loads, stores, atomics, fences): `n` actors with
//! `k_i` visible ops each admit `(Σk_i)! / Πk_i!` interleavings. Under
//! weak visibility the DFS additionally branches on each plain load's
//! visibility candidates, so schedule counts grow data-dependently, but
//! the *outcome* sets are what the model pins down: which register
//! valuations are reachable at all, and which only via non-SC runs.

use iguard_repro::gpu_sim::ir::Scope;
use iguard_repro::oracle::explore::{explore_litmus, ExploreConfig, LitmusReport};
use iguard_repro::oracle::litmus::LitmusSpec;
use iguard_repro::oracle::spec::Placement;

const CB: Placement = Placement::CrossBlock;

fn run(spec: &LitmusSpec, weak: bool) -> LitmusReport {
    let r = explore_litmus(spec, &ExploreConfig::default(), weak);
    assert!(r.complete, "{} must enumerate completely", spec.to_compact_string());
    r
}

/// Outcome keys are flattened per-actor plain-load register files.
fn outcome_keys(r: &LitmusReport) -> Vec<Vec<u32>> {
    r.outcomes.keys().cloned().collect()
}

fn weak_only(r: &LitmusReport, key: &[u32]) -> bool {
    let o = &r.outcomes[key];
    !o.sc && o.weak
}

// ---------------------------------------------------------------------
// Strong machine: schedule counts are exact multinomials, and cross-SM
// stores are invisible to plain loads before a fence writeback, so every
// unfenced shape has exactly one outcome (all loads read 0).
// ---------------------------------------------------------------------

#[test]
fn strong_schedule_counts_are_multinomials() {
    // MP: Sx.Sy / Ly.Lx = 2+2 visible ops -> C(4,2) = 6.
    assert_eq!(run(&LitmusSpec::mp(CB, None), false).schedules, 6);
    // SB and LB have the same 2+2 shape.
    assert_eq!(run(&LitmusSpec::sb(CB, None), false).schedules, 6);
    assert_eq!(run(&LitmusSpec::lb(CB, None), false).schedules, 6);
    // MP with fences: fences are visible, 3+3 -> C(6,3) = 20.
    assert_eq!(run(&LitmusSpec::mp(CB, Some(Scope::Device)), false).schedules, 20);
    assert_eq!(run(&LitmusSpec::mp(CB, Some(Scope::Block)), false).schedules, 20);
    // IRIW: 1+1+2+2 -> 6!/(1!1!2!2!) = 180.
    assert_eq!(run(&LitmusSpec::iriw(CB, None), false).schedules, 180);
    // IRIW with reader fences: 1+1+3+3 -> 8!/(1!1!3!3!) = 1120.
    assert_eq!(
        run(&LitmusSpec::iriw(CB, Some(Scope::Device)), false).schedules,
        1120
    );
    // WRC: 1+2+2 -> 5!/(1!2!2!) = 30; fenced 1+3+3 -> 7!/(1!3!3!) = 140.
    assert_eq!(run(&LitmusSpec::wrc(CB, None), false).schedules, 30);
    assert_eq!(run(&LitmusSpec::wrc(CB, Some(Scope::Device)), false).schedules, 140);
}

#[test]
fn strong_machine_hides_unfenced_cross_sm_stores() {
    // Without a fence no store ever reaches another SM before kernel end,
    // so each unfenced shape has exactly one outcome: all-zero reads.
    for spec in [
        LitmusSpec::mp(CB, None),
        LitmusSpec::lb(CB, None),
        LitmusSpec::iriw(CB, None),
        LitmusSpec::wrc(CB, None),
    ] {
        let r = run(&spec, false);
        assert_eq!(outcome_keys(&r).len(), 1, "{}", spec.to_compact_string());
        assert!(outcome_keys(&r)[0].iter().all(|&v| v == 0));
    }
    // SB's single outcome (0,0) *is* the forbidden one — the strong
    // machine is already non-coherent across SMs — and the shadow-replay
    // classifier correctly marks it non-SC.
    let sb = run(&LitmusSpec::sb(CB, None), false);
    assert_eq!(outcome_keys(&sb), vec![vec![0, 0]]);
    assert!(weak_only(&sb, &[0, 0]));
    // A device fence after each store makes the writeback visible: MP
    // gains the (0,1) outcome where the reader sees x but not yet y.
    let mp_fd = run(&LitmusSpec::mp(CB, Some(Scope::Device)), false);
    assert_eq!(outcome_keys(&mp_fd), vec![vec![0, 0], vec![0, 1]]);
}

// ---------------------------------------------------------------------
// Weak machine: outcome sets for the classic shapes, hand-computed.
// Register order is actors in spec order, each actor's plain loads in
// program order; MP/SB reader registers are (r_first, r_second).
// ---------------------------------------------------------------------

#[test]
fn weak_mp_admits_exactly_the_relaxed_outcomes() {
    // MP = Sx.Sy / Ly.Lx, assertion forbids r0=1 (saw y) & r1=0 (stale x).
    // All four valuations are reachable; (1,0) only via a non-SC run.
    let r = run(&LitmusSpec::mp(CB, None), true);
    assert_eq!(r.schedules, 13);
    assert_eq!(
        outcome_keys(&r),
        vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
    );
    assert!(weak_only(&r, &[1, 0]));
    let a = r.assertion.as_ref().unwrap();
    assert!(a.reachable && !a.sc_reachable);
}

#[test]
fn weak_mp_block_fence_is_insufficient() {
    // A .cta-scope fence does not write back to L2, so the forbidden
    // (1,0) outcome is still reachable: the fence-scope anomaly.
    let r = run(&LitmusSpec::mp(CB, Some(Scope::Block)), true);
    assert_eq!(outcome_keys(&r).len(), 4);
    assert!(weak_only(&r, &[1, 0]));
    assert!(r.assertion.as_ref().unwrap().reachable);
}

#[test]
fn weak_mp_device_fence_restores_order() {
    // fD between the stores flushes x before y ever becomes visible, so
    // (1,0) disappears: exactly {(0,0), (0,1), (1,1)} remain.
    let r = run(&LitmusSpec::mp(CB, Some(Scope::Device)), true);
    assert_eq!(
        outcome_keys(&r),
        vec![vec![0, 0], vec![0, 1], vec![1, 1]]
    );
    let a = r.assertion.as_ref().unwrap();
    assert!(!a.reachable && !a.sc_reachable);
}

#[test]
fn weak_sb_all_four_outcomes_and_fence_removes_forbidden() {
    // SB = Sx.Ly / Sy.Lx; forbidden outcome is (0,0) (both miss the other
    // store). Reachable weak-only without fences; gone with fD.
    let r = run(&LitmusSpec::sb(CB, None), true);
    assert_eq!(outcome_keys(&r).len(), 4);
    assert!(weak_only(&r, &[0, 0]));
    assert!(r.assertion.as_ref().unwrap().reachable);

    let fenced = run(&LitmusSpec::sb(CB, Some(Scope::Device)), true);
    assert_eq!(
        outcome_keys(&fenced),
        vec![vec![0, 1], vec![1, 0], vec![1, 1]]
    );
    assert!(!fenced.assertion.as_ref().unwrap().reachable);
}

#[test]
fn weak_lb_forbidden_outcome_is_unreachable() {
    // LB = Lx.Sy / Ly.Sx. Loads precede the cross stores in program
    // order and the simulator never reorders within a thread, so (1,1)
    // is unreachable even under weak visibility: exactly 3 outcomes.
    let r = run(&LitmusSpec::lb(CB, None), true);
    assert_eq!(
        outcome_keys(&r),
        vec![vec![0, 0], vec![0, 1], vec![1, 0]]
    );
    assert!(!r.assertion.as_ref().unwrap().reachable);
}

#[test]
fn weak_iriw_sees_all_sixteen_outcomes() {
    // IRIW = Sx / Sy / Lx.Ly / Ly.Lx. With per-SM visibility every one of
    // the 2^4 reader valuations is reachable; the IRIW-forbidden one
    // (1,0,1,0) — the two readers disagree on the store order — only via
    // a non-SC run.
    let r = run(&LitmusSpec::iriw(CB, None), true);
    assert_eq!(r.schedules, 974);
    assert_eq!(outcome_keys(&r).len(), 16);
    assert!(weak_only(&r, &[1, 0, 1, 0]));
    let a = r.assertion.as_ref().unwrap();
    assert!(a.reachable && !a.sc_reachable);
}

#[test]
fn weak_iriw_reader_fences_do_not_restore_store_atomicity() {
    // Fences in the readers only order each reader's own accesses; the
    // writers never flush, so the forbidden outcome survives — our fences
    // are non-cumulative, i.e. the model is not multi-copy atomic.
    let r = run(&LitmusSpec::iriw(CB, Some(Scope::Device)), true);
    assert_eq!(outcome_keys(&r).len(), 16);
    assert!(weak_only(&r, &[1, 0, 1, 0]));
    assert!(r.assertion.as_ref().unwrap().reachable);
}

#[test]
fn weak_wrc_shows_non_cumulative_fences() {
    // WRC = Sx / Lx.Sy / Ly.Lx; forbidden (1,1,0) requires actor 2 to see
    // actor 1's y yet miss actor 0's x. Reachable weak-only, and a fence
    // in actors 1 and 2 does not help (actor 0 never flushes x).
    for fence in [None, Some(Scope::Device)] {
        let r = run(&LitmusSpec::wrc(CB, fence), true);
        assert_eq!(outcome_keys(&r).len(), 8, "fence={fence:?}");
        assert!(weak_only(&r, &[1, 1, 0]));
        assert!(r.assertion.as_ref().unwrap().reachable);
    }
}

#[test]
fn same_warp_placement_is_always_sequentially_consistent() {
    // A single warp on one SM shares one L1: no weak visibility choices
    // exist, every run classifies SC, and the forbidden outcomes stay
    // unreachable even with the weak machine enabled.
    for spec in [
        LitmusSpec::mp(Placement::SameWarp, None),
        LitmusSpec::sb(Placement::SameWarp, None),
    ] {
        let r = run(&spec, true);
        assert_eq!(r.schedules, 6, "{}", spec.to_compact_string());
        assert_eq!(outcome_keys(&r).len(), 3);
        for o in r.outcomes.values() {
            assert!(o.sc && !o.weak);
        }
        assert!(!r.assertion.as_ref().unwrap().reachable);
    }
}

#[test]
fn stale_reread_anomaly_is_weak_only() {
    // Beyond-MP shape: the reader loads x (caching a clean 0), snoops
    // y=1, then re-reads x from its own stale clean line — despite the
    // writer's device fence. Assertion r1=1 & r2=0 is weak-only.
    let spec = LitmusSpec::parse("v2;CB;Sx.fD.Sy/Lx.Ly.Lx;?1:r1=1&1:r2=0").unwrap();
    let strong = run(&spec, false);
    assert!(!strong.assertion.as_ref().unwrap().reachable);
    let weak = run(&spec, true);
    assert_eq!(outcome_keys(&weak).len(), 6);
    assert!(weak_only(&weak, &[0, 1, 0]));
    let a = weak.assertion.as_ref().unwrap();
    assert!(a.reachable && !a.sc_reachable);
}
