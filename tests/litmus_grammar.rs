//! Property-based tests of the v2 litmus grammar: every generated spec
//! round-trips through its compact string exactly, and every malformed
//! string is rejected with a *typed* error — there is no panicking parse
//! path anywhere in the grammar.

use iguard_repro::oracle::litmus::{LitmusError, LitmusSpec, MAX_ACTORS, MIN_ACTORS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is the identity on generated specs, and the
    /// parsed spec is structurally equal to the generated one.
    #[test]
    fn random_spec_roundtrips(seed in any::<u64>()) {
        let spec = LitmusSpec::random(&mut SmallRng::seed_from_u64(seed));
        spec.validate().expect("generated spec must validate");
        prop_assert!(spec.actors.len() >= MIN_ACTORS && spec.actors.len() <= MAX_ACTORS);
        let s = spec.to_compact_string();
        let back = LitmusSpec::parse(&s).expect("generated spec must reparse");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_compact_string(), s);
    }

    /// Arbitrary byte soup never panics the parser: it either yields a
    /// valid spec (which must then round-trip) or a typed error. Strings
    /// are drawn from the grammar's own alphabet plus noise so that the
    /// parser's deeper stages actually get exercised.
    #[test]
    fn arbitrary_strings_never_panic(seed in any::<u64>(), len in 0usize..60) {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        const ALPHABET: &[u8] = b"v2;CBSWxyzuLSaefDdBbtw./?:r=&0123456789 Q\xc3\xa9";
        let s: String = (0..len)
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char)
            .collect();
        // A typed rejection is the expected outcome; an accepted spec
        // must validate and round-trip.
        if let Ok(spec) = LitmusSpec::parse(&s) {
            spec.validate().expect("accepted spec must validate");
            let reprinted = spec.to_compact_string();
            let again = LitmusSpec::parse(&reprinted).expect("reprint must reparse");
            prop_assert_eq!(again, spec);
        }
    }

    /// Near-miss mutations of a valid spec (one byte flipped) never panic
    /// and still round-trip when accepted.
    #[test]
    fn single_byte_mutations_never_panic(seed in any::<u64>(), pos in 0usize..64, byte in 0u8..=255) {
        let spec = LitmusSpec::random(&mut SmallRng::seed_from_u64(seed));
        let mut bytes = spec.to_compact_string().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(mutated) = String::from_utf8(bytes) {
            if let Ok(parsed) = LitmusSpec::parse(&mutated) {
                parsed.validate().expect("accepted mutant must validate");
                let reprinted = parsed.to_compact_string();
                prop_assert_eq!(LitmusSpec::parse(&reprinted).unwrap(), parsed);
            }
        }
    }
}

/// Each malformed-input class maps to its specific typed error variant,
/// not a catch-all and not a panic.
#[test]
fn malformed_inputs_yield_typed_errors() {
    type ErrMatcher = fn(&LitmusError) -> bool;
    let cases: &[(&str, ErrMatcher)] = &[
        // Wrong or missing version tag.
        ("v1;CB;Sx/Lx", |e| matches!(e, LitmusError::Version { .. })),
        ("", |e| matches!(e, LitmusError::Version { .. })),
        ("v2", |e| matches!(e, LitmusError::Version { .. })),
        ("v2;CB", |e| matches!(e, LitmusError::Header { .. })),
        // Unknown placement.
        ("v2;XX;Sx/Lx", |e| matches!(e, LitmusError::Placement { .. })),
        // Actor-count violations (1 actor; 5 actors).
        ("v2;CB;Sx", |e| matches!(e, LitmusError::ActorCount { .. })),
        (
            "v2;CB;Sx/Sx/Sx/Sx/Sx",
            |e| matches!(e, LitmusError::ActorCount { .. }),
        ),
        // Empty actor body.
        ("v2;CB;Sx/", |e| matches!(e, LitmusError::EmptyActor { .. })),
        ("v2;CB;/Lx", |e| matches!(e, LitmusError::EmptyActor { .. })),
        // Unknown op / location.
        ("v2;CB;Qx/Lx", |e| matches!(e, LitmusError::UnknownOp { .. })),
        ("v2;CB;Sq/Lx", |e| {
            matches!(e, LitmusError::UnknownOp { .. } | LitmusError::UnknownLocation { .. })
        }),
        // Barriers are meaningless across blocks.
        (
            "v2;CB;Sx.t/Lx",
            |e| matches!(e, LitmusError::BarrierUnderCrossBlock { .. }),
        ),
        // Assertion syntax and reference errors.
        ("v2;CB;Sx/Lx;1:r0=0", |e| matches!(e, LitmusError::Assertion { .. })),
        ("v2;CB;Sx/Lx;?", |e| matches!(e, LitmusError::Assertion { .. })),
        ("v2;CB;Sx/Lx;?bogus", |e| matches!(e, LitmusError::Assertion { .. })),
        (
            "v2;CB;Sx/Lx;?7:r0=0",
            |e| matches!(e, LitmusError::ActorRef { actor: 7, actors: 2 }),
        ),
        (
            "v2;CB;Sx/Lx;?1:r3=0",
            |e| matches!(e, LitmusError::LoadRef { actor: 1, load: 3, loads: 1 }),
        ),
        (
            "v2;CB;Sx/Lx;?[q]=0",
            |e| matches!(e, LitmusError::Assertion { .. }),
        ),
    ];
    for (input, matches_variant) in cases {
        let err = LitmusSpec::parse(input).expect_err(input);
        assert!(
            matches_variant(&err),
            "{input:?} produced unexpected error: {err} ({err:?})"
        );
        // The Display impl must be non-empty and not a Debug dump.
        assert!(!err.to_string().is_empty());
    }
}
