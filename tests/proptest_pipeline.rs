//! Property-based tests of the full pipeline: randomly generated
//! *correctly synchronized* programs must never be flagged (soundness of
//! the no-false-positive claim under program and schedule randomness), and
//! the same programs with their barrier removed must be flagged.

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::Iguard;
use iguard_repro::nvbit_sim::Instrumented;
use proptest::prelude::*;

const BLOCK: u32 = 64;

/// A two-phase block program: every thread writes `a[perm(tid)]`, then —
/// optionally — `__syncthreads()`, then every thread reads `a[tid + shift]`
/// (some other thread's cell). Race-free iff the barrier is present.
fn two_phase_kernel(shift: u32, barrier: bool, writes_per_thread: u32) -> Kernel {
    let mut b = KernelBuilder::new(if barrier { "phased_ok" } else { "phased_racy" });
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // Phase 1: each thread writes its own cell (repeatedly: program order).
    let off = b.mul(tid, 4u32);
    let my = b.add(base, off);
    for i in 0..writes_per_thread {
        let v = b.add(tid, i);
        b.st(my, 0, v);
    }
    if barrier {
        b.syncthreads();
    }
    // Phase 2: read a shifted (cross-warp) cell.
    let t2 = b.add(tid, shift);
    let idx = b.rem(t2, BLOCK);
    let ooff = b.mul(idx, 4u32);
    let oa = b.add(base, ooff);
    let _ = b.ld(oa, 0);
    b.build()
}

fn race_count(k: &Kernel, seed: u64, grid: u32) -> usize {
    let cfg = GpuConfig {
        seed,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc((grid * BLOCK) as usize + 64).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(k, grid, BLOCK, &[buf], &mut tool).unwrap();
    tool.tool().unique_races()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Barrier-separated cross-thread communication is never flagged,
    /// whatever the shift, write count, schedule, or grid size.
    #[test]
    fn barriered_programs_are_never_flagged(
        shift in 33u32..63, // always crosses a warp boundary
        writes in 1u32..4,
        seed in any::<u64>(),
    ) {
        let k = two_phase_kernel(shift, true, writes);
        prop_assert_eq!(race_count(&k, seed, 1), 0);
    }

    /// Removing the barrier makes the same program a detected race on
    /// every schedule (the checks are order-insensitive).
    #[test]
    fn unbarriered_variants_are_always_flagged(
        shift in 33u32..63,
        writes in 1u32..4,
        seed in any::<u64>(),
    ) {
        let k = two_phase_kernel(shift, false, writes);
        prop_assert!(race_count(&k, seed, 1) > 0);
    }

    /// Device-scope atomic accumulation is race-free at any contention
    /// level; block-scope accumulation races exactly when the grid has
    /// more than one block.
    #[test]
    fn atomic_scope_sufficiency(seed in any::<u64>(), grid in 1u32..5, rounds in 1u32..4) {
        for (scope, racy) in [(Scope::Device, false), (Scope::Block, grid > 1)] {
            let mut b = KernelBuilder::new("atomic_prop");
            let base = b.param(0);
            let one = b.imm(1);
            for _ in 0..rounds {
                let _ = b.atom(AtomOp::Add, scope, base, 0, one);
            }
            let k = b.build();
            let cfg = GpuConfig { seed, ..GpuConfig::default() };
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.alloc(4).unwrap();
            let mut tool = Instrumented::new(Iguard::default());
            gpu.launch(&k, grid, 32, &[buf], &mut tool).unwrap();
            prop_assert_eq!(
                tool.tool().unique_races() > 0,
                racy,
                "scope {:?}, grid {}", scope, grid
            );
        }
    }

    /// The detector never alters program results: outputs with and without
    /// instrumentation are identical for the same schedule seed.
    #[test]
    fn detection_is_observationally_transparent(seed in any::<u64>()) {
        let k = two_phase_kernel(40, true, 2);
        let run = |tooled: bool| {
            let cfg = GpuConfig { seed, ..GpuConfig::default() };
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.alloc(128).unwrap();
            if tooled {
                let mut tool = Instrumented::new(Iguard::default());
                gpu.launch(&k, 1, BLOCK, &[buf], &mut tool).unwrap();
            } else {
                gpu.launch(&k, 1, BLOCK, &[buf], &mut NullHook).unwrap();
            }
            gpu.read_slice(buf, 64)
        };
        prop_assert_eq!(run(false), run(true));
    }
}
