//! Full-pipeline integration tests: every Table 4 workload through
//! (workload → gpu-sim → nvbit-sim → iGUARD) must reproduce the paper's
//! exact race count with compatible race classes, and every Table 5
//! workload must be silent — the headline "57 races, no false positives".

use iguard_repro::gpu_sim::hook::ExecMode;
use iguard_repro::gpu_sim::machine::{Gpu, GpuConfig};
use iguard_repro::iguard::{Iguard, IguardConfig, RaceSite};
use iguard_repro::nvbit_sim::Instrumented;
use iguard_repro::workloads::{self, Size, Workload};

const SEED: u64 = 42;

fn run_iguard(w: &Workload) -> Vec<RaceSite> {
    let cfg = GpuConfig {
        seed: SEED,
        mode: ExecMode::Its,
        max_steps: 80_000_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let launches = w.build(&mut gpu, Size::Test);
    let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
    for l in &launches {
        gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
    }
    tool.tool_mut().race_sites()
}

#[test]
fn all_57_table4_races_are_detected() {
    let mut total = 0;
    for w in workloads::racey() {
        let sites = run_iguard(&w);
        assert_eq!(
            sites.len(),
            w.paper_races,
            "{}: paper reports {} races, detected {}: {:?}",
            w.name,
            w.paper_races,
            sites.len(),
            sites
        );
        total += sites.len();
    }
    assert_eq!(total, 57, "the paper's headline count");
}

#[test]
fn detected_race_kinds_match_table4_classes() {
    for w in workloads::racey() {
        let sites = run_iguard(&w);
        let expected: Vec<&str> = w.tags.iter().map(|t| t.detector_code()).collect();
        for site in &sites {
            for kind in &site.kinds {
                assert!(
                    expected.contains(&kind.code()),
                    "{}: site at pc {} reported {} but Table 4 lists {:?}",
                    w.name,
                    site.pc,
                    kind.code(),
                    expected
                );
            }
        }
    }
}

#[test]
fn table5_workloads_report_zero_false_positives() {
    for w in workloads::clean() {
        let sites = run_iguard(&w);
        assert!(sites.is_empty(), "{}: false positives {:?}", w.name, sites);
    }
}

#[test]
fn race_reports_carry_source_annotations() {
    // Every seeded bug carries a .loc() annotation; the detector must
    // surface it like debug-info line numbers (§6.4).
    let w = workloads::by_name("graph-color").expect("exists");
    let sites = run_iguard(&w);
    assert!(!sites.is_empty());
    for site in &sites {
        assert!(
            site.line.is_some(),
            "site at pc {} has no source annotation",
            site.pc
        );
    }
}

#[test]
fn detection_is_stable_across_schedules() {
    // The race *count* for the deterministic seeders must not depend on
    // the ITS schedule (the checks are order-insensitive).
    let w = workloads::by_name("hashtable").expect("exists");
    for seed in [1u64, 7, 1234] {
        let cfg = GpuConfig {
            seed,
            mode: ExecMode::Its,
            ..GpuConfig::default()
        };
        let mut gpu = Gpu::new(cfg);
        let launches = w.build(&mut gpu, Size::Test);
        let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
                .unwrap();
        }
        assert_eq!(
            tool.tool_mut().race_sites().len(),
            w.paper_races,
            "seed {seed}"
        );
    }
}

#[test]
fn clean_workloads_stay_clean_across_schedules() {
    for name in ["b_reduce", "d_scan", "kmeans", "warpAA"] {
        let w = workloads::by_name(name).expect("exists");
        for seed in [3u64, 99, 4242] {
            let cfg = GpuConfig {
                seed,
                mode: ExecMode::Its,
                ..GpuConfig::default()
            };
            let mut gpu = Gpu::new(cfg);
            let launches = w.build(&mut gpu, Size::Test);
            let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
            for l in &launches {
                gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
                    .unwrap();
            }
            assert_eq!(tool.tool().unique_races(), 0, "{name} seed {seed}");
        }
    }
}

#[test]
fn scord_mode_misses_exactly_the_its_races_of_the_suite() {
    // §7.1: "iGUARD caught 5 more previously unreported true races in ScoR
    // due to ITS. ScoRD did not report them since it does not support ITS."
    // In our suite the ITS races are reduction's 3 and louvain's 3.
    for (name, full, scord) in [("reduction", 7usize, 4usize), ("louvain", 3, 0)] {
        let w = workloads::by_name(name).unwrap();
        for (cfg, expect) in [
            (IguardConfig::default(), full),
            (IguardConfig::scord_like(), scord),
        ] {
            let gcfg = GpuConfig {
                seed: SEED,
                mode: ExecMode::Its,
                ..GpuConfig::default()
            };
            let mut gpu = Gpu::new(gcfg);
            let launches = w.build(&mut gpu, Size::Test);
            let mut tool = Instrumented::new(Iguard::new(cfg));
            for l in &launches {
                gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
                    .unwrap();
            }
            assert_eq!(tool.tool_mut().race_sites().len(), expect, "{name}");
        }
    }
}
