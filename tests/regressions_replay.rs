//! Deterministic replay of every historical regression:
//!
//! 1. the shrunk failure cases `proptest` recorded in
//!    `tests/fuzz_test.proptest-regressions` (re-expressed here as
//!    explicit kernels — proptest only replays them inside its own
//!    harness, this test pins them unconditionally);
//! 2. the oracle regression corpus `tests/corpus/oracle_v1.corpus`:
//!    every pinned kernel's ground-truth verdict, witness schedule
//!    replay, and iGUARD verdict must still hold.
//!
//! Regenerate the corpus after a *deliberate* semantic change with:
//!
//! ```text
//! ORACLE_CORPUS_REGEN=1 cargo test --release --test regressions_replay
//! ```

use iguard_repro::gpu_sim::machine::{Gpu, GpuConfig};
use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::Iguard;
use iguard_repro::nvbit_sim::Instrumented;
use iguard_repro::oracle::corpus;
use iguard_repro::oracle::diff::DiffConfig;
use iguard_repro::oracle::spec::KernelSpec;

const CORPUS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/corpus/oracle_v1.corpus"
);

/// The shrunk case from `fuzz_test.proptest-regressions`: two phases with
/// `read_shift = 33`, the first gap unsynchronized, schedule seed 0. The
/// generator marks it racy by construction; the detector must flag it on
/// that exact schedule. (Mirrors `fuzz_test::build` for two phases.)
#[test]
fn proptest_regression_unsynced_double_buffer_is_flagged() {
    const BLOCK: u32 = 64;
    const READ_SHIFT: u32 = 33;
    let mut b = KernelBuilder::new("regression_cc15c4");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    for (i, synced) in [(0usize, true), (1usize, false)] {
        if i > 0 && synced {
            b.syncthreads();
        }
        let parity_base = (i % 2) as u32 * BLOCK;
        let wcell = b.add(tid, parity_base);
        let woff = b.mul(wcell, 4u32);
        let wa = b.add(base, woff);
        let v = b.add(tid, i as u32);
        b.st(wa, 0, v);
        if i > 0 {
            let prev_base = ((i - 1) % 2) as u32 * BLOCK;
            let t2 = b.add(tid, READ_SHIFT);
            let rcell = b.rem(t2, BLOCK);
            let shifted = b.add(rcell, prev_base);
            let roff = b.mul(shifted, 4u32);
            let ra = b.add(base, roff);
            let _ = b.ld(ra, 0);
        }
    }
    let kernel = b.build();

    let mut gpu = Gpu::new(GpuConfig {
        seed: 0,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(2 * BLOCK as usize).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(&kernel, 1, BLOCK, &[buf], &mut tool).unwrap();
    assert!(
        tool.tool().unique_races() > 0,
        "historical regression no longer flagged"
    );
}

/// The canonical kernels the corpus pins: one per verdict class the
/// oracle distinguishes, plus the divergence classes the campaign found.
fn corpus_specs() -> Vec<KernelSpec> {
    [
        "v1;CB;S0/L0",       // cross-block store/load: DR race
        "v1;CB;S3.L1/S3",    // cross-block store/store: DR race
        "v1;SW;S1/L1",       // same-warp store/load: ITS race (Barracuda-blind)
        "v1;SW;w.S0/w.L0",   // barrier *before* both accesses: still racy
        "v1;SW;S0.w/w.L0",   // store before, load after __syncwarp: clean
        "v1;SW;S0.t/t.L0",   // store before, load after __syncthreads: clean
        "v1;CB;aB0/aB0",     // block-scope atomics across blocks: AS race
        "v1;CB;aD0/aD0",     // device-scope atomics: synchronized, clean
        "v1;CB;aD2/L2",      // benign atomic read (P6): clean, Barracuda FP class
        "v1;CB;aB1/L1",      // insufficient-scope atomic vs load: AS race
        "v1;SW;S0.fD/L0",    // fence does not order plain accesses: racy
        "v1;SW;L0/L0",       // load/load: no conflict
        "v1;CB;L0.S1/L0.S2", // shared read, disjoint writes: clean
    ]
    .iter()
    .map(|s| KernelSpec::parse(s).expect("corpus spec parses"))
    .collect()
}

#[test]
fn oracle_corpus_replays_deterministically() {
    let cfg = DiffConfig::default();

    if std::env::var_os("ORACLE_CORPUS_REGEN").is_some() {
        let entries: Vec<_> = corpus_specs()
            .iter()
            .map(|s| corpus::entry_for(s, &cfg))
            .collect();
        std::fs::create_dir_all(std::path::Path::new(CORPUS_PATH).parent().unwrap()).unwrap();
        std::fs::write(CORPUS_PATH, corpus::format(&entries)).expect("write corpus");
        eprintln!("corpus regenerated at {CORPUS_PATH} ({} entries)", entries.len());
        return;
    }

    let text = std::fs::read_to_string(CORPUS_PATH)
        .expect("corpus missing; regenerate with ORACLE_CORPUS_REGEN=1");
    let entries = corpus::parse(&text).expect("corpus parses");
    assert!(
        entries.len() >= corpus_specs().len(),
        "corpus lost entries: {} < {}",
        entries.len(),
        corpus_specs().len()
    );
    let mut failures = Vec::new();
    for e in &entries {
        if let Err(msg) = corpus::verify(e, &cfg) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
