//! Deterministic replay of every historical regression:
//!
//! 1. the shrunk failure cases `proptest` recorded in
//!    `tests/fuzz_test.proptest-regressions` (re-expressed here as
//!    explicit kernels — proptest only replays them inside its own
//!    harness, this test pins them unconditionally);
//! 2. the oracle regression corpus `tests/corpus/oracle_v1.corpus`:
//!    every pinned kernel's ground-truth verdict, witness schedule
//!    replay, and iGUARD verdict must still hold;
//! 3. the weak-memory litmus corpus `tests/corpus/litmus_v2.corpus`:
//!    every pinned litmus test's race verdict, assertion classification
//!    (unreachable / SC-reachable / weak-only), witness replay on the
//!    weak machine, and both detectors' explained divergences.
//!
//! Regenerate a corpus after a *deliberate* semantic change with:
//!
//! ```text
//! ORACLE_CORPUS_REGEN=1 cargo test --release --test regressions_replay
//! LITMUS_CORPUS_REGEN=1 cargo test --release --test regressions_replay
//! ```

use iguard_repro::gpu_sim::machine::{Gpu, GpuConfig};
use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::Iguard;
use iguard_repro::nvbit_sim::Instrumented;
use iguard_repro::oracle::corpus;
use iguard_repro::oracle::diff::{diff_litmus, DiffConfig};
use iguard_repro::oracle::litmus::LitmusSpec;
use iguard_repro::oracle::spec::KernelSpec;

const CORPUS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/corpus/oracle_v1.corpus"
);

const LITMUS_CORPUS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/corpus/litmus_v2.corpus"
);

/// The shrunk case from `fuzz_test.proptest-regressions`: two phases with
/// `read_shift = 33`, the first gap unsynchronized, schedule seed 0. The
/// generator marks it racy by construction; the detector must flag it on
/// that exact schedule. (Mirrors `fuzz_test::build` for two phases.)
#[test]
fn proptest_regression_unsynced_double_buffer_is_flagged() {
    const BLOCK: u32 = 64;
    const READ_SHIFT: u32 = 33;
    let mut b = KernelBuilder::new("regression_cc15c4");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    for (i, synced) in [(0usize, true), (1usize, false)] {
        if i > 0 && synced {
            b.syncthreads();
        }
        let parity_base = (i % 2) as u32 * BLOCK;
        let wcell = b.add(tid, parity_base);
        let woff = b.mul(wcell, 4u32);
        let wa = b.add(base, woff);
        let v = b.add(tid, i as u32);
        b.st(wa, 0, v);
        if i > 0 {
            let prev_base = ((i - 1) % 2) as u32 * BLOCK;
            let t2 = b.add(tid, READ_SHIFT);
            let rcell = b.rem(t2, BLOCK);
            let shifted = b.add(rcell, prev_base);
            let roff = b.mul(shifted, 4u32);
            let ra = b.add(base, roff);
            let _ = b.ld(ra, 0);
        }
    }
    let kernel = b.build();

    let mut gpu = Gpu::new(GpuConfig {
        seed: 0,
        ..GpuConfig::default()
    });
    let buf = gpu.alloc(2 * BLOCK as usize).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(&kernel, 1, BLOCK, &[buf], &mut tool).unwrap();
    assert!(
        tool.tool().unique_races() > 0,
        "historical regression no longer flagged"
    );
}

/// The canonical kernels the corpus pins: one per verdict class the
/// oracle distinguishes, plus the divergence classes the campaign found.
fn corpus_specs() -> Vec<KernelSpec> {
    [
        "v1;CB;S0/L0",       // cross-block store/load: DR race
        "v1;CB;S3.L1/S3",    // cross-block store/store: DR race
        "v1;SW;S1/L1",       // same-warp store/load: ITS race (Barracuda-blind)
        "v1;SW;w.S0/w.L0",   // barrier *before* both accesses: still racy
        "v1;SW;S0.w/w.L0",   // store before, load after __syncwarp: clean
        "v1;SW;S0.t/t.L0",   // store before, load after __syncthreads: clean
        "v1;CB;aB0/aB0",     // block-scope atomics across blocks: AS race
        "v1;CB;aD0/aD0",     // device-scope atomics: synchronized, clean
        "v1;CB;aD2/L2",      // benign atomic read (P6): clean, Barracuda FP class
        "v1;CB;aB1/L1",      // insufficient-scope atomic vs load: AS race
        "v1;SW;S0.fD/L0",    // fence does not order plain accesses: racy
        "v1;SW;L0/L0",       // load/load: no conflict
        "v1;CB;L0.S1/L0.S2", // shared read, disjoint writes: clean
    ]
    .iter()
    .map(|s| KernelSpec::parse(s).expect("corpus spec parses"))
    .collect()
}

#[test]
fn oracle_corpus_replays_deterministically() {
    let cfg = DiffConfig::default();

    if std::env::var_os("ORACLE_CORPUS_REGEN").is_some() {
        let entries: Vec<_> = corpus_specs()
            .iter()
            .map(|s| corpus::entry_for(s, &cfg))
            .collect();
        std::fs::create_dir_all(std::path::Path::new(CORPUS_PATH).parent().unwrap()).unwrap();
        std::fs::write(CORPUS_PATH, corpus::format(&entries)).expect("write corpus");
        eprintln!("corpus regenerated at {CORPUS_PATH} ({} entries)", entries.len());
        return;
    }

    let text = std::fs::read_to_string(CORPUS_PATH)
        .expect("corpus missing; regenerate with ORACLE_CORPUS_REGEN=1");
    let entries = corpus::parse(&text).expect("corpus parses");
    assert!(
        entries.len() >= corpus_specs().len(),
        "corpus lost entries: {} < {}",
        entries.len(),
        corpus_specs().len()
    );
    let mut failures = Vec::new();
    for e in &entries {
        if let Err(msg) = corpus::verify(e, &cfg) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The pinned litmus battery: MP, SB, LB, IRIW and WRC at every fence
/// scope (none / `.cta` / `.gpu`), the same-warp placements, the atomic
/// variants, and the detector false-negative shapes the weak plane
/// exposes. Each string is the exact compact form the corpus pins.
fn litmus_corpus_specs() -> Vec<LitmusSpec> {
    [
        // Message passing at each fence scope. The assertion is the
        // MP-forbidden outcome (saw the flag, missed the payload).
        "v2;CB;Sx.Sy/Ly.Lx;?1:r0=1&1:r1=0",
        "v2;CB;Sx.fB.Sy/Ly.fB.Lx;?1:r0=1&1:r1=0",
        "v2;CB;Sx.fD.Sy/Ly.fD.Lx;?1:r0=1&1:r1=0",
        // Store buffering: both readers miss the other store.
        "v2;CB;Sx.Ly/Sy.Lx;?0:r0=0&1:r0=0",
        "v2;CB;Sx.fB.Ly/Sy.fB.Lx;?0:r0=0&1:r0=0",
        "v2;CB;Sx.fD.Ly/Sy.fD.Lx;?0:r0=0&1:r0=0",
        // Load buffering: both loads see the other's later store
        // (unreachable in an in-order pipeline at any scope).
        "v2;CB;Lx.Sy/Ly.Sx;?0:r0=1&1:r0=1",
        "v2;CB;Lx.fB.Sy/Ly.fB.Sx;?0:r0=1&1:r0=1",
        "v2;CB;Lx.fD.Sy/Ly.fD.Sx;?0:r0=1&1:r0=1",
        // IRIW: the two readers disagree on the store order. Reader
        // fences do not restore multi-copy atomicity (non-cumulative).
        "v2;CB;Sx/Sy/Lx.Ly/Ly.Lx;?2:r0=1&2:r1=0&3:r0=1&3:r1=0",
        "v2;CB;Sx/Sy/Lx.fB.Ly/Ly.fB.Lx;?2:r0=1&2:r1=0&3:r0=1&3:r1=0",
        "v2;CB;Sx/Sy/Lx.fD.Ly/Ly.fD.Lx;?2:r0=1&2:r1=0&3:r0=1&3:r1=0",
        // Write-to-read causality, unfenced and fenced.
        "v2;CB;Sx/Lx.Sy/Ly.Lx;?1:r0=1&2:r0=1&2:r1=0",
        "v2;CB;Sx/Lx.fD.Sy/Ly.fD.Lx;?1:r0=1&2:r0=1&2:r1=0",
        // Same-warp placements: one L1, always sequentially consistent.
        "v2;SW;Sx.Sy/Ly.Lx;?1:r0=1&1:r1=0",
        "v2;SW;Sx.Ly/Sy.Lx;?0:r0=0&1:r0=0",
        // Stale re-read: the reader revisits its own stale clean line
        // even though the writer fenced at device scope.
        "v2;CB;Sx.fD.Sy/Lx.Ly.Lx;?1:r1=1&1:r2=0",
        // Detector false negatives beyond the paper's six races: device
        // atomics paired with plain loads are race-free under the P6
        // rule, yet the weak plane still reaches the forbidden outcome.
        "v2;CB;eDx.eDy/Lx.Ly.Lx;?1:r1=1&1:r2=0",
        "v2;CB;eDx.fD.eDy/Lx.Ly.Lx;?1:r1=1&1:r2=0",
        // Atomic MP variants: device scope clean, block scope an AS race.
        "v2;CB;eDx.eDy/Ly.Lx;?1:r0=1&1:r1=0",
        "v2;CB;eBx.eBy/Ly.Lx;?1:r0=1&1:r1=0",
        // SB with atomic stores.
        "v2;CB;aDx.Ly/aDy.Lx;?0:r0=0&1:r0=0",
        // Three-writer coherence on one location.
        "v2;CB;Sx/Sx/Lx.Lx",
        // IRIW with atomic writers (readers stay plain).
        "v2;CB;eDx/eDy/Lx.Ly/Ly.Lx;?2:r0=1&2:r1=0&3:r0=1&3:r1=0",
    ]
    .iter()
    .map(|s| {
        let spec = LitmusSpec::parse(s).expect("litmus corpus spec parses");
        assert_eq!(spec.to_compact_string(), *s, "non-canonical corpus string");
        spec
    })
    .collect()
}

#[test]
fn litmus_corpus_replays_deterministically() {
    let cfg = DiffConfig::default();

    if std::env::var_os("LITMUS_CORPUS_REGEN").is_some() {
        let entries: Vec<_> = litmus_corpus_specs()
            .iter()
            .map(|s| corpus::entry_for_litmus(s, &cfg))
            .collect();
        std::fs::create_dir_all(std::path::Path::new(LITMUS_CORPUS_PATH).parent().unwrap())
            .unwrap();
        std::fs::write(LITMUS_CORPUS_PATH, corpus::format_litmus(&entries))
            .expect("write litmus corpus");
        eprintln!(
            "litmus corpus regenerated at {LITMUS_CORPUS_PATH} ({} entries)",
            entries.len()
        );
        return;
    }

    let text = std::fs::read_to_string(LITMUS_CORPUS_PATH)
        .expect("litmus corpus missing; regenerate with LITMUS_CORPUS_REGEN=1");
    let entries = corpus::parse_litmus(&text).expect("litmus corpus parses");
    assert!(
        entries.len() >= 20,
        "litmus corpus must pin at least 20 entries, found {}",
        entries.len()
    );
    assert!(
        entries.len() >= litmus_corpus_specs().len(),
        "litmus corpus lost entries: {} < {}",
        entries.len(),
        litmus_corpus_specs().len()
    );
    let mut failures = Vec::new();
    for e in &entries {
        // Every divergence in the pinned corpus must carry an explanation.
        if e.explanations.iter().any(|x| x.contains("UNEXPLAINED")) {
            failures.push(format!(
                "{}: pinned entry carries an unexplained divergence",
                e.spec.to_compact_string()
            ));
        }
        if let Err(msg) = corpus::verify_litmus(e, &cfg) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Pins the detector false-negative classes the weak-memory plane
/// demonstrates *beyond* the paper's six race classes: a program iGUARD
/// correctly calls race-free (device-scope atomic writes vs plain loads,
/// the P6 flag-polling idiom) still reaches an assertion-violating
/// outcome under relaxed visibility. Unfenced, the divergence classifies
/// `visibility-blind`; with a device fence in the writer it classifies
/// `fence-scope-approximation` — the fence cannot invalidate the
/// reader's stale clean line.
#[test]
fn weak_plane_false_negative_classes_are_pinned() {
    let cfg = DiffConfig::default();
    for (spec_str, class) in [
        ("v2;CB;eDx.eDy/Lx.Ly.Lx;?1:r1=1&1:r2=0", "visibility-blind"),
        (
            "v2;CB;eDx.fD.eDy/Lx.Ly.Lx;?1:r1=1&1:r2=0",
            "fence-scope-approximation",
        ),
    ] {
        let spec = LitmusSpec::parse(spec_str).unwrap();
        let r = diff_litmus(&spec, &cfg);
        assert!(!r.oracle.racy, "{spec_str}: must be race-free under the oracle");
        let a = r.oracle.assertion.as_ref().expect("assertion verdict");
        assert!(
            a.reachable && !a.sc_reachable,
            "{spec_str}: violation must be weak-only"
        );
        assert!(
            r.unexplained().is_empty(),
            "{spec_str}: FN divergence must be explained"
        );
        let iguard_fn = r
            .divergences
            .iter()
            .find(|d| d.detector == "iguard")
            .expect("iguard FN divergence present");
        assert_eq!(iguard_fn.explanation, Some(class), "{spec_str}");
    }
}
